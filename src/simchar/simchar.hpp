// SimChar: the automatically constructed homoglyph database (Section 3.3).
//
// Pipeline:
//   Step I    render every IDNA-permitted code point the font covers as a
//             32x32 binary bitmap;
//   Step II   compute the pixel-difference metric ∆ for every pairwise
//             combination and keep pairs with ∆ ≤ θ (paper: θ = 4);
//   Step III  eliminate sparse characters (< 10 black pixels).
//
// The quadratic Step II is exact but is accelerated by a pluggable pair-
// mining strategy (simchar/pair_miner.hpp): the original pixel-count band
// prune — ∆(a, b) ≥ |popcount(a) − popcount(b)| — or a pigeonhole block
// index that hashes θ + 1 word blocks of each bitmap and verifies only
// bucket collisions. Both are exact; tests cross-check every strategy
// against the naive all-pairs build.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "font/font_source.hpp"
#include "simchar/pair_miner.hpp"
#include "unicode/codepoint.hpp"

namespace sham::simchar {

struct BuildOptions {
  int threshold = 4;           // keep pairs with ∆ ≤ threshold (Step II)
  int min_black_pixels = 10;   // sparse-character cutoff (Step III)
  std::size_t threads = 0;     // 0 = hardware concurrency
  /// Legacy knob, honored only when pair_strategy == kAuto:
  /// true → kPopcountBand, false → kAllPairs.
  bool use_bucket_pruning = true;
  bool idna_only = true;       // intersect repertoire with IDNA-PVALID
  /// Step II candidate generation strategy (see pair_miner.hpp).
  PairStrategy pair_strategy = PairStrategy::kAuto;
};

struct BuildStats {
  std::size_t repertoire_size = 0;    // code points considered
  std::size_t glyphs_rendered = 0;    // glyphs the font actually covers
  std::uint64_t pairs_compared = 0;   // full ∆ evaluations performed
  std::size_t pairs_found = 0;        // pairs with ∆ ≤ θ before Step III
  std::size_t sparse_eliminated = 0;  // characters dropped by Step III
  std::size_t pairs_after_sparse = 0;
  double render_seconds = 0.0;        // Table 5 row 1
  double compare_seconds = 0.0;       // Table 5 row 2
  double sparse_seconds = 0.0;        // Table 5 row 3
  /// Per-strategy Step II counters (strategy actually used, candidate
  /// funnel, bucket occupancy, comparisons avoided vs all-pairs).
  /// mining.delta_evaluations == pairs_compared.
  MinerStats mining;
};

/// The built homoglyph database (value type; cheap queries).
///
/// Storage comes in two modes sharing one query path:
///   owned  — the pair list and its CSR posting index live in vectors
///            (every constructor and build() produce this);
///   view   — pairs and index are immutable spans into storage somebody
///            else owns (the mmap'd DB artifact; see adopt_view). A view
///            answers every const query with zero parsing or allocation;
///            `backing` keeps the mapping alive for the db's lifetime.
class SimCharDb {
 public:
  /// Run the three-step construction against `font`.
  static SimCharDb build(const font::FontSource& font, const BuildOptions& options = {},
                         BuildStats* stats = nullptr);

  SimCharDb() = default;
  explicit SimCharDb(std::vector<HomoglyphPair> pairs);

  SimCharDb(const SimCharDb& other) { *this = other; }
  SimCharDb& operator=(const SimCharDb& other);
  SimCharDb(SimCharDb&&) noexcept = default;
  SimCharDb& operator=(SimCharDb&&) noexcept = default;

  /// The flat shape serialized into (and adopted from) the DB artifact:
  /// the canonical pair array plus the CSR posting index —
  /// postings[offsets[i] .. offsets[i+1]) are the pair indices touching
  /// chars[i], sorted by partner code point.
  struct Flat {
    std::span<const HomoglyphPair> pairs;
    std::span<const std::uint32_t> chars;     // ascending, unique
    std::span<const std::uint32_t> offsets;   // size chars.size() + 1
    std::span<const std::uint32_t> postings;  // size 2 * pairs.size()
  };

  /// Spans over the current storage (either mode) — what the artifact
  /// writer serializes. Valid until the db is mutated or destroyed.
  [[nodiscard]] Flat flat() const noexcept;

  /// Adopt immutable flat storage in place (zero-copy load path). The
  /// spans must satisfy the Flat invariants — the loader has already
  /// structurally validated them — and must stay valid for as long as
  /// `backing` is held. Throws std::runtime_error on shape mismatch.
  static SimCharDb adopt_view(const Flat& flat, std::shared_ptr<const void> backing);

  /// True when the db reads adopted (e.g. memory-mapped) storage.
  [[nodiscard]] bool is_view() const noexcept { return backing_ != nullptr; }

  /// True if {a, b} is listed (order-insensitive; reflexive pairs are not
  /// stored, so are_homoglyphs(x, x) is false).
  [[nodiscard]] bool are_homoglyphs(unicode::CodePoint a, unicode::CodePoint b) const;

  /// The ∆ recorded for {a, b}, if listed.
  [[nodiscard]] std::optional<int> delta_of(unicode::CodePoint a,
                                            unicode::CodePoint b) const;

  /// All homoglyphs of `cp`, ascending.
  [[nodiscard]] std::vector<unicode::CodePoint> homoglyphs_of(unicode::CodePoint cp) const;

  /// All pairs, canonical order.
  [[nodiscard]] std::span<const HomoglyphPair> pairs() const noexcept { return pairs_; }

  /// Every character participating in at least one pair ("# characters"
  /// in the paper's Table 1).
  [[nodiscard]] std::vector<unicode::CodePoint> characters() const;

  [[nodiscard]] std::size_t pair_count() const noexcept { return pairs_.size(); }
  [[nodiscard]] std::size_t character_count() const noexcept { return chars_.size(); }

  /// Text serialization: one "U+XXXX U+YYYY <delta>" line per pair.
  [[nodiscard]] std::string serialize() const;
  static SimCharDb parse(std::string_view text);

  /// Merge two databases (union of pairs; on conflict the smaller ∆ wins).
  [[nodiscard]] static SimCharDb merge(const SimCharDb& a, const SimCharDb& b);

 private:
  void index();
  /// Point the query spans at the owned vectors (owned mode only).
  void rebind() noexcept;

  std::vector<HomoglyphPair> owned_pairs_;
  std::vector<std::uint32_t> owned_chars_;
  std::vector<std::uint32_t> owned_offsets_;
  std::vector<std::uint32_t> owned_postings_;
  /// The query path reads only these spans; owned mode points them at the
  /// vectors above, view mode into `backing_`-owned storage.
  std::span<const HomoglyphPair> pairs_;
  std::span<const std::uint32_t> chars_;
  std::span<const std::uint32_t> offsets_;
  std::span<const std::uint32_t> postings_;
  std::shared_ptr<const void> backing_;
};

/// Step I output in the kernels' word-major shape: the rendered repertoire
/// as one GlyphPanel (column i = cps[i]), with per-glyph ink counts. This
/// is what the DB artifact serializes so future incremental updates (and
/// the batched ∆ kernels) can read glyph rows straight from the mapping.
struct RepertoirePanel {
  std::vector<unicode::CodePoint> cps;  // font coverage order
  std::vector<std::int32_t> popcounts;
  kernels::GlyphPanel panel;
};

[[nodiscard]] RepertoirePanel render_repertoire_panel(const font::FontSource& font,
                                                      const BuildOptions& options = {});

/// Incremental maintenance (Section 4.2 of the paper: "we would need to
/// update SimChar when the Unicode standard adds a new set of glyphs" —
/// e.g. Unicode 12 added 553 characters over version 11).
///
/// Instead of redoing the full O(n²/2) pairwise pass, compare only the
/// `added` characters against the whole (old ∪ added) repertoire:
/// O(|added|·n) — plus the pairs among the added characters themselves.
/// The result merged with `existing` is exactly what a full rebuild over
/// the union repertoire would produce (property-tested).
///
/// `existing` must have been built from `font` with the same `options`;
/// characters in `added` that the font does not cover are ignored.
[[nodiscard]] SimCharDb update_with_new_characters(
    const SimCharDb& existing, const font::FontSource& font,
    const std::vector<unicode::CodePoint>& added, const BuildOptions& options = {},
    BuildStats* stats = nullptr);

/// Difference between two database versions: pairs only in `after`
/// (added) and only in `before` (removed).
struct DbDiff {
  std::vector<HomoglyphPair> added;
  std::vector<HomoglyphPair> removed;
};

[[nodiscard]] DbDiff diff(const SimCharDb& before, const SimCharDb& after);

}  // namespace sham::simchar
