#include "simchar/pair_miner.hpp"

#include <algorithm>
#include <stdexcept>

#include "kernels/kernels.hpp"
#include "util/thread_pool.hpp"

namespace sham::simchar {

namespace {

constexpr std::uint64_t pack_pair(std::uint32_t i, std::uint32_t j) noexcept {
  return (static_cast<std::uint64_t>(i) << 32) | j;
}

/// Chunk count for deterministic parallel_for_chunks fan-out: enough
/// chunks to load-balance irregular work without drowning in merge cost.
std::size_t chunk_count(const util::ThreadPool& pool, std::size_t domain) {
  if (domain == 0) return 1;
  return std::min(domain, std::max<std::size_t>(1, pool.thread_count() * 4));
}

/// Per-chunk Step II output slot: owned by one chunk during the scan,
/// merged in chunk order afterwards so the emitted sequence (and every
/// counter) is independent of thread scheduling.
struct ChunkResult {
  std::vector<HomoglyphPair> found;
  std::uint64_t delta_evaluations = 0;
};

void finish(std::vector<ChunkResult>& chunks, std::vector<HomoglyphPair>& pairs,
            MinerStats* stats) {
  std::size_t total = 0;
  for (const auto& c : chunks) total += c.found.size();
  pairs.reserve(total);
  for (auto& c : chunks) {
    pairs.insert(pairs.end(), c.found.begin(), c.found.end());
    if (stats != nullptr) stats->delta_evaluations += c.delta_evaluations;
  }
  // Canonical output order: every strategy (and thread count) emits the
  // byte-identical sequence.
  std::sort(pairs.begin(), pairs.end());
}

}  // namespace

std::string_view pair_strategy_name(PairStrategy strategy) noexcept {
  switch (strategy) {
    case PairStrategy::kAuto: return "auto";
    case PairStrategy::kAllPairs: return "all-pairs";
    case PairStrategy::kPopcountBand: return "popcount-band";
    case PairStrategy::kBlockIndex: return "block-index";
  }
  return "unknown";
}

std::optional<PairStrategy> parse_pair_strategy(std::string_view name) noexcept {
  if (name == "auto") return PairStrategy::kAuto;
  if (name == "all-pairs" || name == "all") return PairStrategy::kAllPairs;
  if (name == "popcount-band" || name == "band") return PairStrategy::kPopcountBand;
  if (name == "block-index" || name == "block") return PairStrategy::kBlockIndex;
  return std::nullopt;
}

PairMiner::PairMiner(std::span<const MinerGlyph> glyphs, int threshold,
                     PairStrategy strategy, util::ThreadPool& pool)
    : glyphs_{glyphs}, threshold_{threshold}, strategy_{strategy}, pool_{&pool} {
  if (threshold < 0) throw std::invalid_argument{"PairMiner: threshold < 0"};
  if (strategy == PairStrategy::kAuto) {
    throw std::invalid_argument{"PairMiner: resolve kAuto before construction"};
  }
  // Pigeonhole needs θ + 1 blocks; at word granularity the 16-word bitmap
  // caps that at θ ≤ 15. Beyond it, fall back to the band prune (still
  // exact, just weaker).
  if (strategy_ == PairStrategy::kBlockIndex &&
      threshold_ + 1 > font::GlyphBitmap::kWords) {
    strategy_ = PairStrategy::kPopcountBand;
  }
  if (strategy_ == PairStrategy::kPopcountBand) build_popcount_order();
  build_panel();
  if (strategy_ == PairStrategy::kBlockIndex) build_block_tables();
}

void PairMiner::build_popcount_order() {
  order_.resize(glyphs_.size());
  for (std::uint32_t i = 0; i < glyphs_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [&](std::uint32_t x, std::uint32_t y) {
    return glyphs_[x].popcount != glyphs_[y].popcount
               ? glyphs_[x].popcount < glyphs_[y].popcount
               : glyphs_[x].cp < glyphs_[y].cp;
  });
}

void PairMiner::build_panel() {
  const std::size_t n = glyphs_.size();
  panel_.reset(n);
  if (strategy_ == PairStrategy::kPopcountBand) {
    sorted_popcounts_.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      panel_.set_glyph(k, glyphs_[order_[k]].glyph.words().data());
      sorted_popcounts_[k] = glyphs_[order_[k]].popcount;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      panel_.set_glyph(i, glyphs_[i].glyph.words().data());
    }
  }
}

std::uint64_t PairMiner::block_key(std::size_t glyph, std::size_t block) const {
  const auto [first, last] = block_spans_[block];
  // Scalar reference on the probe side — pinned bit-identical to the
  // batched table build at every dispatch level by the differential suite.
  return kernels::block_hash_u1024(glyphs_[glyph].glyph.words().data(),
                                   static_cast<unsigned>(first),
                                   static_cast<unsigned>(last));
}

void PairMiner::build_block_tables() {
  const int blocks = threshold_ + 1;
  block_spans_.resize(blocks);
  for (int b = 0; b < blocks; ++b) {
    // Even partition of the 16 words: block b covers
    // [b·16/B, (b+1)·16/B) — non-empty for every b when B ≤ 16.
    block_spans_[b] = {b * font::GlyphBitmap::kWords / blocks,
                       (b + 1) * font::GlyphBitmap::kWords / blocks};
  }
  tables_.resize(blocks);
  // One task per table: each table is filled by exactly one chunk, in
  // ascending glyph order, so bucket contents are deterministic. Keys come
  // from the batched kernel (panel_ is in natural glyph order here).
  pool_->parallel_for(
      0, static_cast<std::size_t>(blocks),
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint64_t> keys(glyphs_.size());
        for (std::size_t b = begin; b < end; ++b) {
          const auto [first, last] = block_spans_[b];
          kernels::block_hash_batch(panel_, static_cast<unsigned>(first),
                                    static_cast<unsigned>(last), keys.data());
          auto& table = tables_[b];
          table.buckets.reserve(glyphs_.size());
          for (std::uint32_t i = 0; i < glyphs_.size(); ++i) {
            table.buckets[keys[i]].push_back(i);
          }
        }
      });
}

void PairMiner::fill_block_stats(MinerStats* stats) const {
  if (stats == nullptr) return;
  stats->block_tables = tables_.size();
  constexpr std::size_t kSlots = 8;
  stats->bucket_histogram.assign(kSlots, 0);
  for (const auto& table : tables_) {
    for (const auto& [key, bucket] : table.buckets) {
      ++stats->bucket_histogram[std::min(bucket.size() - 1, kSlots - 1)];
    }
  }
}

std::vector<HomoglyphPair> PairMiner::verify_candidates(
    std::vector<std::uint64_t>& packed, MinerStats* stats) const {
  if (stats != nullptr) stats->candidates_emitted = packed.size();
  // Dedupe (i, j) across tables: a pair matching in several blocks is
  // emitted once per block. Sorting also fixes the verification order, so
  // the merge below is deterministic for any thread count.
  std::sort(packed.begin(), packed.end());
  packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
  if (stats != nullptr) stats->candidates_deduped = packed.size();

  struct VerifyChunk {
    std::vector<HomoglyphPair> found;
    std::uint64_t pruned = 0;
    std::uint64_t evaluated = 0;
    std::uint64_t rejected = 0;
  };
  const auto chunks = chunk_count(*pool_, packed.size());
  std::vector<VerifyChunk> slots(chunks);
  pool_->parallel_for_chunks(
      0, packed.size(), chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto& slot = slots[chunk];
        for (std::size_t k = begin; k < end; ++k) {
          const auto i = static_cast<std::uint32_t>(packed[k] >> 32);
          const auto j = static_cast<std::uint32_t>(packed[k]);
          const auto& gi = glyphs_[i];
          const auto& gj = glyphs_[j];
          // The popcount prune composes with the block index: ∆ ≥ |Δink|,
          // so an over-threshold ink gap kills the candidate without a
          // full ∆ evaluation.
          if (std::abs(gi.popcount - gj.popcount) > threshold_) {
            ++slot.pruned;
            continue;
          }
          ++slot.evaluated;
          const int d = kernels::delta_u1024(gi.glyph.words().data(),
                                             gj.glyph.words().data());
          if (d <= threshold_) {
            auto [a, b] = std::minmax(gi.cp, gj.cp);
            slot.found.push_back({a, b, d});
          } else {
            ++slot.rejected;
          }
        }
      });

  std::vector<HomoglyphPair> pairs;
  std::size_t total = 0;
  for (const auto& s : slots) total += s.found.size();
  pairs.reserve(total);
  for (const auto& s : slots) {
    pairs.insert(pairs.end(), s.found.begin(), s.found.end());
    if (stats != nullptr) {
      stats->candidates_pruned += s.pruned;
      stats->delta_evaluations += s.evaluated;
      stats->candidates_rejected += s.rejected;
    }
  }
  if (stats != nullptr) {
    stats->candidates_verified = stats->candidates_deduped -
                                 stats->candidates_pruned -
                                 stats->candidates_rejected;
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::vector<HomoglyphPair> PairMiner::mine_all(MinerStats* stats) const {
  if (stats != nullptr) {
    *stats = {};
    stats->strategy = strategy_;
    const std::uint64_t n = glyphs_.size();
    stats->all_pairs_domain = n * (n - 1) / 2;
  }
  std::vector<HomoglyphPair> pairs;
  const std::size_t n = glyphs_.size();
  if (n >= 2) {
    switch (strategy_) {
      case PairStrategy::kAllPairs: {
        const auto chunks = chunk_count(*pool_, n);
        std::vector<ChunkResult> slots(chunks);
        pool_->parallel_for_chunks(
            0, n, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
              auto& slot = slots[chunk];
              std::vector<std::int32_t> deltas(n);
              for (std::size_t i = begin; i < end; ++i) {
                const auto& gi = glyphs_[i];
                if (i + 1 >= n) continue;
                // One batched ∆ row: glyph i against every later column.
                kernels::delta_batch_u1024(gi.glyph.words().data(), panel_,
                                           i + 1, n, deltas.data());
                slot.delta_evaluations += n - i - 1;
                for (std::size_t j = i + 1; j < n; ++j) {
                  const int d = deltas[j - i - 1];
                  if (d <= threshold_) {
                    auto [a, b] = std::minmax(gi.cp, glyphs_[j].cp);
                    slot.found.push_back({a, b, d});
                  }
                }
              }
            });
        finish(slots, pairs, stats);
        break;
      }
      case PairStrategy::kPopcountBand: {
        const auto chunks = chunk_count(*pool_, n);
        std::vector<ChunkResult> slots(chunks);
        pool_->parallel_for_chunks(
            0, n, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
              auto& slot = slots[chunk];
              std::vector<std::int32_t> deltas(n);
              for (std::size_t p = begin; p < end; ++p) {
                const auto& gi = glyphs_[order_[p]];
                // The ink window ends at the first later position whose
                // popcount exceeds pc + θ; panel columns follow order_, so
                // the window is one contiguous batched row.
                const std::size_t run_end = static_cast<std::size_t>(
                    std::upper_bound(sorted_popcounts_.begin() + p + 1,
                                     sorted_popcounts_.end(),
                                     gi.popcount + threshold_) -
                    sorted_popcounts_.begin());
                if (run_end <= p + 1) continue;
                kernels::delta_batch_u1024(gi.glyph.words().data(), panel_,
                                           p + 1, run_end, deltas.data());
                slot.delta_evaluations += run_end - p - 1;
                for (std::size_t q = p + 1; q < run_end; ++q) {
                  const int d = deltas[q - p - 1];
                  if (d <= threshold_) {
                    auto [a, b] = std::minmax(gi.cp, glyphs_[order_[q]].cp);
                    slot.found.push_back({a, b, d});
                  }
                }
              }
            });
        finish(slots, pairs, stats);
        break;
      }
      case PairStrategy::kBlockIndex: {
        // Candidate generation: every bucket collision, per table, in
        // table order (cross-table duplicates removed in verification).
        std::vector<std::vector<std::uint64_t>> per_table(tables_.size());
        pool_->parallel_for(
            0, tables_.size(), [&](std::size_t begin, std::size_t end) {
              for (std::size_t t = begin; t < end; ++t) {
                auto& out = per_table[t];
                for (const auto& [key, bucket] : tables_[t].buckets) {
                  if (bucket.size() < 2) continue;
                  for (std::size_t x = 0; x < bucket.size(); ++x) {
                    for (std::size_t y = x + 1; y < bucket.size(); ++y) {
                      out.push_back(pack_pair(bucket[x], bucket[y]));
                    }
                  }
                }
              }
            });
        std::size_t total = 0;
        for (const auto& v : per_table) total += v.size();
        std::vector<std::uint64_t> packed;
        packed.reserve(total);
        for (const auto& v : per_table) {
          packed.insert(packed.end(), v.begin(), v.end());
        }
        pairs = verify_candidates(packed, stats);
        fill_block_stats(stats);
        break;
      }
      case PairStrategy::kAuto: break;  // unreachable (constructor rejects)
    }
  }
  if (stats != nullptr) {
    stats->comparisons_avoided = stats->all_pairs_domain - stats->delta_evaluations;
  }
  return pairs;
}

std::vector<HomoglyphPair> PairMiner::mine_involving(
    const std::unordered_set<unicode::CodePoint>& probes, MinerStats* stats) const {
  const std::size_t n = glyphs_.size();
  // Probe glyph indices, ascending; is_probe flags for the dedupe rule: a
  // probe-probe pair is emitted only from its smaller-index side.
  std::vector<std::uint32_t> probe_indices;
  std::vector<char> is_probe(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (probes.contains(glyphs_[i].cp)) {
      probe_indices.push_back(i);
      is_probe[i] = 1;
    }
  }
  if (stats != nullptr) {
    *stats = {};
    stats->strategy = strategy_;
    const std::uint64_t total = n;
    const std::uint64_t rest = n - probe_indices.size();
    stats->all_pairs_domain = total * (total - 1) / 2 - rest * (rest - 1) / 2;
  }
  const auto skip = [&](std::uint32_t probe, std::uint32_t other) {
    return other == probe || (is_probe[other] && other < probe);
  };

  std::vector<HomoglyphPair> pairs;
  if (!probe_indices.empty() && n >= 2) {
    switch (strategy_) {
      case PairStrategy::kAllPairs: {
        const auto chunks = chunk_count(*pool_, probe_indices.size());
        std::vector<ChunkResult> slots(chunks);
        pool_->parallel_for_chunks(
            0, probe_indices.size(), chunks,
            [&](std::size_t chunk, std::size_t begin, std::size_t end) {
              auto& slot = slots[chunk];
              std::vector<std::int32_t> deltas(n);
              for (std::size_t k = begin; k < end; ++k) {
                const auto pi = probe_indices[k];
                const auto& gp = glyphs_[pi];
                // Batch the whole row; skipped columns are computed but
                // neither emitted nor counted (the counters stay the
                // logical evaluation count the stats tests pin down).
                kernels::delta_batch_u1024(gp.glyph.words().data(), panel_, 0,
                                           n, deltas.data());
                for (std::uint32_t j = 0; j < n; ++j) {
                  if (skip(pi, j)) continue;
                  ++slot.delta_evaluations;
                  const int d = deltas[j];
                  if (d <= threshold_) {
                    auto [a, b] = std::minmax(gp.cp, glyphs_[j].cp);
                    slot.found.push_back({a, b, d});
                  }
                }
              }
            });
        finish(slots, pairs, stats);
        break;
      }
      case PairStrategy::kPopcountBand: {
        const auto chunks = chunk_count(*pool_, probe_indices.size());
        std::vector<ChunkResult> slots(chunks);
        pool_->parallel_for_chunks(
            0, probe_indices.size(), chunks,
            [&](std::size_t chunk, std::size_t begin, std::size_t end) {
              auto& slot = slots[chunk];
              std::vector<std::int32_t> deltas(n);
              for (std::size_t k = begin; k < end; ++k) {
                const auto pi = probe_indices[k];
                const auto& gp = glyphs_[pi];
                // The ink-count window [pc − θ, pc + θ] is a contiguous
                // run of the sorted panel: one batched row per probe.
                const std::size_t lo = static_cast<std::size_t>(
                    std::lower_bound(sorted_popcounts_.begin(),
                                     sorted_popcounts_.end(),
                                     gp.popcount - threshold_) -
                    sorted_popcounts_.begin());
                const std::size_t run_end = static_cast<std::size_t>(
                    std::upper_bound(sorted_popcounts_.begin() + lo,
                                     sorted_popcounts_.end(),
                                     gp.popcount + threshold_) -
                    sorted_popcounts_.begin());
                if (lo >= run_end) continue;
                kernels::delta_batch_u1024(gp.glyph.words().data(), panel_, lo,
                                           run_end, deltas.data());
                for (std::size_t q = lo; q < run_end; ++q) {
                  const auto j = order_[q];
                  if (skip(pi, j)) continue;
                  ++slot.delta_evaluations;
                  const int d = deltas[q - lo];
                  if (d <= threshold_) {
                    auto [a, b] = std::minmax(gp.cp, glyphs_[j].cp);
                    slot.found.push_back({a, b, d});
                  }
                }
              }
            });
        finish(slots, pairs, stats);
        break;
      }
      case PairStrategy::kBlockIndex: {
        // Probe the prebuilt tables with only the added glyphs' blocks:
        // cost scales with |probes| · bucket occupancy, not with n².
        const auto chunks = chunk_count(*pool_, probe_indices.size());
        std::vector<std::vector<std::uint64_t>> per_chunk(chunks);
        pool_->parallel_for_chunks(
            0, probe_indices.size(), chunks,
            [&](std::size_t chunk, std::size_t begin, std::size_t end) {
              auto& out = per_chunk[chunk];
              for (std::size_t k = begin; k < end; ++k) {
                const auto pi = probe_indices[k];
                for (std::size_t t = 0; t < tables_.size(); ++t) {
                  const auto it = tables_[t].buckets.find(block_key(pi, t));
                  if (it == tables_[t].buckets.end()) continue;
                  for (const auto j : it->second) {
                    if (skip(pi, j)) continue;
                    out.push_back(pack_pair(std::min(pi, j), std::max(pi, j)));
                  }
                }
              }
            });
        std::size_t total = 0;
        for (const auto& v : per_chunk) total += v.size();
        std::vector<std::uint64_t> packed;
        packed.reserve(total);
        for (const auto& v : per_chunk) {
          packed.insert(packed.end(), v.begin(), v.end());
        }
        pairs = verify_candidates(packed, stats);
        fill_block_stats(stats);
        break;
      }
      case PairStrategy::kAuto: break;  // unreachable (constructor rejects)
    }
  }
  if (stats != nullptr) {
    stats->comparisons_avoided = stats->all_pairs_domain - stats->delta_evaluations;
  }
  return pairs;
}

}  // namespace sham::simchar
