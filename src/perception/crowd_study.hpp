// Simulated crowd-sourced confusability study (Section 4.1).
//
// The paper ran MTurk tasks: workers rate a pair of characters on a
// 5-point Likert scale ("1: very distinct" .. "5: very confusing"), with
// dummy trap pairs inserted; workers who rate a dummy as confusing (>= 4)
// or a pixel-identical pair (∆ = 0) as distinct (<= 2) have all responses
// removed.
//
// We reproduce the protocol end-to-end — stimulus design, per-worker
// attentiveness and bias, trap insertion, the exact filtering rules, and
// box-plot aggregation — with a response model in place of live humans: a
// worker's expected score is a logistic function of the pair's visual
// distance ∆, calibrated to the paper's summary statistics (∆ = 4 →
// mean 3.57 / median 4; ∆ = 5 → mean 2.57 / median 2; see DESIGN.md §2).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "unicode/codepoint.hpp"
#include "util/rng.hpp"

namespace sham::perception {

/// One image shown to workers: a pair of characters.
struct Stimulus {
  unicode::CodePoint a = 0;
  unicode::CodePoint b = 0;
  double visual_delta = 0.0;  // pixel distance between the glyphs
  bool is_dummy = false;      // trap: two random, clearly distinct chars
  std::string tag;            // experiment grouping key (e.g. "delta=4", "UC")
};

/// Logistic response model: E[score] = 1 + 4 / (1 + exp((∆ − m) / s)).
/// Defaults calibrated to the paper's reported means.
struct ResponseModelParams {
  double midpoint = 4.573;
  double steepness = 0.978;
  double worker_noise = 0.9;        // per-response Gaussian noise (scores)
  double worker_bias_sd = 0.25;     // per-worker systematic shift
  double inattentive_rate = 0.08;   // probability a worker is a random clicker
};

struct WorkerProfile {
  double bias = 0.0;
  bool attentive = true;
};

/// Expected (pre-noise) score for a visual distance under the model.
[[nodiscard]] double expected_score(double visual_delta,
                                    const ResponseModelParams& params = {});

/// Sample one Likert response (1..5).
[[nodiscard]] int sample_response(double visual_delta, const WorkerProfile& worker,
                                  const ResponseModelParams& params, util::Rng& rng);

/// Five-number summary + mean of a Likert sample (box-plot statistics used
/// by Figures 9 and 10; whiskers at 1.5 IQR clamped to observed range).
struct LikertSummary {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  double whisker_low = 0.0;
  double whisker_high = 0.0;
  std::array<std::size_t, 5> histogram{};  // counts of scores 1..5
};

[[nodiscard]] LikertSummary summarize_scores(std::vector<int> scores);

struct StudyConfig {
  std::uint64_t seed = 1;
  std::size_t workers = 12;  // recruited; some are filtered out
  ResponseModelParams model;
};

struct StudyOutcome {
  std::size_t workers_recruited = 0;
  std::size_t workers_kept = 0;
  /// Effective (post-filter) responses, parallel per stimulus index.
  std::vector<std::vector<int>> responses;

  /// Pool all effective responses whose stimulus tag matches.
  [[nodiscard]] std::vector<int> scores_for_tag(const std::vector<Stimulus>& stimuli,
                                                const std::string& tag) const;
};

/// Run the study: every recruited worker rates every stimulus; the paper's
/// two filtering rules are then applied.
[[nodiscard]] StudyOutcome run_study(const std::vector<Stimulus>& stimuli,
                                     const StudyConfig& config);

}  // namespace sham::perception
