#include "perception/crowd_study.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sham::perception {

double expected_score(double visual_delta, const ResponseModelParams& params) {
  return 1.0 + 4.0 / (1.0 + std::exp((visual_delta - params.midpoint) / params.steepness));
}

int sample_response(double visual_delta, const WorkerProfile& worker,
                    const ResponseModelParams& params, util::Rng& rng) {
  if (!worker.attentive) {
    return 1 + static_cast<int>(rng.below(5));  // random clicker
  }
  const double mean = expected_score(visual_delta, params) + worker.bias;
  const double raw = rng.normal(mean, params.worker_noise);
  const int score = static_cast<int>(std::lround(raw));
  return std::clamp(score, 1, 5);
}

LikertSummary summarize_scores(std::vector<int> scores) {
  LikertSummary s;
  s.n = scores.size();
  if (scores.empty()) return s;
  std::sort(scores.begin(), scores.end());

  double sum = 0.0;
  for (const int v : scores) {
    if (v < 1 || v > 5) throw std::invalid_argument{"summarize_scores: score out of range"};
    sum += v;
    ++s.histogram[static_cast<std::size_t>(v - 1)];
  }
  s.mean = sum / static_cast<double>(scores.size());

  const auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(scores.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, scores.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return scores[lo] * (1.0 - frac) + scores[hi] * frac;
  };
  s.median = quantile(0.5);
  s.q1 = quantile(0.25);
  s.q3 = quantile(0.75);
  const double iqr = s.q3 - s.q1;
  s.whisker_low = std::max<double>(scores.front(), s.q1 - 1.5 * iqr);
  s.whisker_high = std::min<double>(scores.back(), s.q3 + 1.5 * iqr);
  return s;
}

std::vector<int> StudyOutcome::scores_for_tag(const std::vector<Stimulus>& stimuli,
                                              const std::string& tag) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < stimuli.size() && i < responses.size(); ++i) {
    if (stimuli[i].tag != tag) continue;
    out.insert(out.end(), responses[i].begin(), responses[i].end());
  }
  return out;
}

StudyOutcome run_study(const std::vector<Stimulus>& stimuli, const StudyConfig& config) {
  if (config.workers == 0) throw std::invalid_argument{"run_study: no workers"};
  util::Rng rng{config.seed};

  StudyOutcome outcome;
  outcome.workers_recruited = config.workers;
  outcome.responses.assign(stimuli.size(), {});

  for (std::size_t w = 0; w < config.workers; ++w) {
    WorkerProfile worker;
    worker.bias = rng.normal(0.0, config.model.worker_bias_sd);
    worker.attentive = !rng.bernoulli(config.model.inattentive_rate);

    std::vector<int> answers(stimuli.size());
    bool keep = true;
    for (std::size_t i = 0; i < stimuli.size(); ++i) {
      answers[i] = sample_response(stimuli[i].visual_delta, worker, config.model, rng);
      // Filtering rule 1: judged a dummy as confusing.
      if (stimuli[i].is_dummy && answers[i] >= 4) keep = false;
      // Filtering rule 2: judged a pixel-identical pair as distinct.
      if (!stimuli[i].is_dummy && stimuli[i].visual_delta == 0.0 && answers[i] <= 2) {
        keep = false;
      }
    }
    if (!keep) continue;
    ++outcome.workers_kept;
    for (std::size_t i = 0; i < stimuli.size(); ++i) {
      outcome.responses[i].push_back(answers[i]);
    }
  }
  return outcome;
}

}  // namespace sham::perception
