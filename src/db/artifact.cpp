#include "db/artifact.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "db/mapped_file.hpp"

namespace sham::db {

namespace {

static_assert(std::is_trivially_copyable_v<simchar::HomoglyphPair> &&
                  sizeof(simchar::HomoglyphPair) == 12,
              "SIMC section serializes HomoglyphPair raw");

/// Append-only payload builder whose alignment padding mirrors SpanReader
/// exactly: sections start 64-byte aligned in the file, so padding to a
/// multiple of `a` (a <= 64, a | 64) relative to the payload start equals
/// the reader's absolute-address alignment.
class Payload {
 public:
  void align(std::size_t a) {
    while (bytes_.size() % a != 0) bytes_.push_back(std::byte{0});
  }

  template <typename T>
  void scalar(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    append(&value, sizeof(T));
  }

  template <typename T>
  void array(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    align(alignof(T));
    append(values.data(), values.size() * sizeof(T));
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return bytes_;
  }

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  std::vector<std::byte> bytes_;
};

Payload simchar_payload(const simchar::SimCharDb& db) {
  const auto flat = db.flat();
  Payload out;
  out.scalar<std::uint64_t>(flat.pairs.size());
  out.scalar<std::uint64_t>(flat.chars.size());
  out.array(flat.pairs);
  out.array(flat.chars);
  out.array(flat.offsets);
  out.array(flat.postings);
  return out;
}

Payload homoglyph_payload(const homoglyph::HomoglyphDb& db) {
  const auto flat = db.to_flat();
  Payload out;
  out.scalar<std::uint64_t>(flat.generation);
  out.scalar<std::uint64_t>(flat.pair_keys.size());
  out.scalar<std::uint64_t>(flat.adj_cps.size());
  out.scalar<std::uint64_t>(flat.adj_data.size());
  out.scalar<std::uint64_t>(flat.canon_keys.size());
  out.scalar<std::uint32_t>(flat.canonical_classes);
  out.scalar<std::uint32_t>(flat.config_flags);
  out.array(std::span<const std::uint64_t>{flat.pair_keys});
  out.array(std::span<const std::uint8_t>{flat.pair_sources});
  out.array(std::span<const std::uint32_t>{flat.adj_cps});
  out.array(std::span<const std::uint32_t>{flat.adj_offsets});
  out.array(std::span<const std::uint32_t>{flat.adj_data});
  out.array(std::span<const std::uint32_t>{flat.canon_keys});
  out.array(std::span<const std::uint32_t>{flat.canon_reps});
  return out;
}

Payload references_payload(std::span<const std::string> references) {
  Payload out;
  out.scalar<std::uint64_t>(references.size());
  std::vector<std::uint64_t> offsets;
  offsets.reserve(references.size() + 1);
  std::uint64_t offset = 0;
  offsets.push_back(0);
  for (const auto& ref : references) {
    offset += ref.size();
    offsets.push_back(offset);
  }
  out.array(std::span<const std::uint64_t>{offsets});
  std::vector<std::uint8_t> blob;
  blob.reserve(static_cast<std::size_t>(offset));
  for (const auto& ref : references) {
    blob.insert(blob.end(), ref.begin(), ref.end());
  }
  out.array(std::span<const std::uint8_t>{blob});
  return out;
}

Payload skeleton_payload(const SkeletonFlat& flat) {
  Payload out;
  out.scalar<std::uint64_t>(flat.hash_mask);
  out.scalar<std::uint64_t>(flat.max_bucket_occupancy);
  out.scalar<std::uint64_t>(flat.non_empty_buckets);
  out.scalar<std::uint64_t>(flat.split_buckets);
  out.scalar<std::uint64_t>(flat.entry_hashes.size());
  out.scalar<std::uint64_t>(flat.entry_h2.size());
  out.scalar<std::uint64_t>(flat.bucket_hashes.size());
  out.array(std::span<const std::uint64_t>{flat.entry_hashes});
  out.array(std::span<const std::uint64_t>{flat.entry_h2});
  out.array(std::span<const std::uint64_t>{flat.bucket_hashes});
  out.array(std::span<const std::uint32_t>{flat.bucket_offsets});
  out.array(std::span<const std::uint32_t>{flat.bucket_entries});
  out.array(std::span<const std::uint32_t>{flat.bucket_child_start});
  out.array(std::span<const std::uint64_t>{flat.child_h2});
  out.array(std::span<const std::uint32_t>{flat.child_offsets});
  out.array(std::span<const std::uint32_t>{flat.child_entries});
  return out;
}

Payload panel_payload(const kernels::GlyphPanel& panel,
                      std::span<const unicode::CodePoint> cps,
                      std::span<const std::int32_t> popcounts) {
  Payload out;
  out.scalar<std::uint64_t>(panel.size());
  out.scalar<std::uint64_t>(panel.stride());
  out.array(cps);
  out.array(popcounts);
  // Word rows land 64-byte aligned in the mapping (sections are 64-byte
  // aligned and this pad mirrors the reader's) so the batched ∆ kernels
  // can stream them in place; the pad bytes are zero by construction.
  out.align(kSectionAlign);
  if (panel.stride() != 0) {
    out.array(std::span<const std::uint64_t>{
        panel.word_row(0), kernels::kGlyphWords * panel.stride()});
  }
  return out;
}

}  // namespace

void write_db_file(const std::string& path, const WriteRequest& request) {
  if (request.simchar == nullptr || request.homoglyph == nullptr) {
    throw std::invalid_argument{
        "write_db_file: simchar and homoglyph databases are mandatory"};
  }
  if (request.skeleton != nullptr && request.references.empty()) {
    throw std::invalid_argument{
        "write_db_file: a skeleton section requires the reference labels it "
        "indexes"};
  }
  if (request.panel != nullptr &&
      (request.glyph_cps.size() != request.panel->size() ||
       request.glyph_popcounts.size() != request.panel->size())) {
    throw std::invalid_argument{
        "write_db_file: glyph_cps/glyph_popcounts must parallel the panel"};
  }

  std::vector<std::pair<std::uint32_t, Payload>> sections;
  sections.emplace_back(kSecSimChar, simchar_payload(*request.simchar));
  sections.emplace_back(kSecHomoglyph, homoglyph_payload(*request.homoglyph));
  if (!request.references.empty()) {
    sections.emplace_back(kSecReferences, references_payload(request.references));
  }
  if (request.skeleton != nullptr) {
    sections.emplace_back(kSecSkeleton, skeleton_payload(*request.skeleton));
  }
  if (request.panel != nullptr) {
    sections.emplace_back(kSecGlyphPanel,
                          panel_payload(*request.panel, request.glyph_cps,
                                        request.glyph_popcounts));
  }

  FileHeader header;
  header.generation = request.homoglyph->generation();
  header.section_count = static_cast<std::uint32_t>(sections.size());
  header.header_bytes = sizeof(FileHeader);
  header.reference_fingerprint =
      request.references.empty() ? 0 : request.reference_fingerprint;

  std::vector<SectionEntry> table(sections.size());
  std::uint64_t offset = sizeof(FileHeader) + table.size() * sizeof(SectionEntry);
  for (std::size_t s = 0; s < sections.size(); ++s) {
    offset = (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
    const auto& payload = sections[s].second.bytes();
    table[s].tag = sections[s].first;
    table[s].offset = offset;
    table[s].size = payload.size();
    table[s].checksum = fnv1a64(payload.data(), payload.size());
    offset += payload.size();
  }
  header.file_size = offset;
  header.section_table_checksum =
      fnv1a64(table.data(), table.size() * sizeof(SectionEntry));
  header.header_checksum = fnv1a64(&header, sizeof(FileHeader) - sizeof(std::uint64_t));

  // Write to a sibling temp file, fsync it, and rename into place:
  // concurrent readers never map a half-written artifact, and a crash or
  // power loss after the rename cannot land the new name on unwritten data
  // (rename alone does not order the data against the metadata).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) {
      throw std::runtime_error{"write_db_file: cannot open " + tmp};
    }
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(table.data()),
              static_cast<std::streamsize>(table.size() * sizeof(SectionEntry)));
    std::uint64_t pos = sizeof(FileHeader) + table.size() * sizeof(SectionEntry);
    static constexpr char kPad[kSectionAlign] = {};
    for (std::size_t s = 0; s < sections.size(); ++s) {
      const auto pad = table[s].offset - pos;
      out.write(kPad, static_cast<std::streamsize>(pad));
      const auto& payload = sections[s].second.bytes();
      out.write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
      pos = table[s].offset + table[s].size;
    }
    out.close();
    if (out.fail()) {
      std::remove(tmp.c_str());
      throw std::runtime_error{"write_db_file: short write to " + tmp};
    }
  }
#ifndef _WIN32
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0 || ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      std::remove(tmp.c_str());
      throw std::runtime_error{"write_db_file: cannot fsync " + tmp};
    }
    ::close(fd);
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error{"write_db_file: cannot rename " + tmp + " to " + path};
  }
#ifndef _WIN32
  // Best-effort directory sync so the rename itself is durable; some
  // filesystems refuse fsync on a directory fd, which is not an error the
  // (already readable) artifact should fail on.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
}

// --- Loader ---------------------------------------------------------------

namespace {

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw std::runtime_error{"db artifact: " + path + ": " + what};
}

template <typename T>
void require_ascending_unique(std::span<const T> values, SpanReader& r,
                              const char* what) {
  if (!std::is_sorted(values.begin(), values.end()) ||
      std::adjacent_find(values.begin(), values.end()) != values.end()) {
    r.fail(std::string{what} + " not strictly ascending");
  }
}

/// Offsets table: monotonic, starts at 0, ends at `total`.
void require_offsets(std::span<const std::uint32_t> offsets, std::uint64_t total,
                     SpanReader& r, const char* what) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != total ||
      !std::is_sorted(offsets.begin(), offsets.end())) {
    r.fail(std::string{what} + " offsets inconsistent");
  }
}

simchar::SimCharDb::Flat parse_simchar(SpanReader r) {
  const auto pair_count = r.scalar<std::uint64_t>();
  const auto char_count = r.scalar<std::uint64_t>();
  simchar::SimCharDb::Flat flat;
  flat.pairs = r.array<simchar::HomoglyphPair>(pair_count);
  flat.chars = r.array<std::uint32_t>(char_count);
  flat.offsets = r.array<std::uint32_t>(char_count + 1);
  flat.postings = r.array<std::uint32_t>(2 * pair_count);
  if (r.remaining() != 0) r.fail("trailing bytes");
  require_ascending_unique(flat.chars, r, "chars");
  require_offsets(flat.offsets, flat.postings.size(), r, "posting");
  for (const auto p : flat.postings) {
    if (p >= pair_count) r.fail("posting index out of range");
  }
  for (const auto& pair : flat.pairs) {
    if (pair.a >= pair.b) r.fail("pair not in canonical a < b order");
  }
  return flat;
}

homoglyph::HomoglyphDb::FlatView parse_homoglyph(SpanReader r,
                                                 std::uint64_t generation) {
  homoglyph::HomoglyphDb::FlatView flat;
  flat.generation = r.scalar<std::uint64_t>();
  const auto pair_count = r.scalar<std::uint64_t>();
  const auto adj_cp_count = r.scalar<std::uint64_t>();
  const auto adj_data_count = r.scalar<std::uint64_t>();
  const auto canon_count = r.scalar<std::uint64_t>();
  flat.canonical_classes = r.scalar<std::uint32_t>();
  flat.config_flags = r.scalar<std::uint32_t>();
  flat.pair_keys = r.array<std::uint64_t>(pair_count);
  flat.pair_sources = r.array<std::uint8_t>(pair_count);
  flat.adj_cps = r.array<std::uint32_t>(adj_cp_count);
  flat.adj_offsets = r.array<std::uint32_t>(adj_cp_count + 1);
  flat.adj_data = r.array<std::uint32_t>(adj_data_count);
  flat.canon_keys = r.array<std::uint32_t>(canon_count);
  flat.canon_reps = r.array<std::uint32_t>(canon_count);
  if (r.remaining() != 0) r.fail("trailing bytes");
  if (flat.generation != generation) {
    r.fail("generation disagrees with the header stamp");
  }
  require_ascending_unique(flat.pair_keys, r, "pair keys");
  require_ascending_unique(flat.adj_cps, r, "adjacency characters");
  require_ascending_unique(flat.canon_keys, r, "canonical keys");
  require_offsets(flat.adj_offsets, flat.adj_data.size(), r, "adjacency");
  for (const auto s : flat.pair_sources) {
    if (s < 1 || s > 3) r.fail("pair provenance out of range");
  }
  return flat;
}

std::vector<std::string> parse_references(SpanReader r) {
  const auto count = r.scalar<std::uint64_t>();
  // `count + 1` must not wrap: with count == UINT64_MAX the sum is 0, the
  // array bound check passes on an empty span, and offsets.back() below
  // reads out of bounds. Every real count also needs 8 offset bytes per
  // label inside the section, so anything the wrap check passes is then
  // bounded by the array call itself.
  if (count == std::numeric_limits<std::uint64_t>::max()) {
    r.fail("reference count overflow");
  }
  const auto offsets = r.array<std::uint64_t>(count + 1);
  const auto blob = r.array<std::uint8_t>(offsets.back());
  if (r.remaining() != 0) r.fail("trailing bytes");
  if (offsets.front() != 0 || !std::is_sorted(offsets.begin(), offsets.end())) {
    r.fail("label offsets inconsistent");
  }
  std::vector<std::string> references;
  references.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    references.emplace_back(
        reinterpret_cast<const char*>(blob.data()) + offsets[i],
        static_cast<std::size_t>(offsets[i + 1] - offsets[i]));
  }
  return references;
}

SkeletonFlatView parse_skeleton(SpanReader r) {
  SkeletonFlatView flat;
  flat.hash_mask = r.scalar<std::uint64_t>();
  flat.max_bucket_occupancy = r.scalar<std::uint64_t>();
  flat.non_empty_buckets = r.scalar<std::uint64_t>();
  flat.split_buckets = r.scalar<std::uint64_t>();
  const auto entry_count = r.scalar<std::uint64_t>();
  const auto h2_count = r.scalar<std::uint64_t>();
  const auto bucket_count = r.scalar<std::uint64_t>();
  flat.entry_hashes = r.array<std::uint64_t>(entry_count);
  flat.entry_h2 = r.array<std::uint64_t>(h2_count);
  flat.bucket_hashes = r.array<std::uint64_t>(bucket_count);
  flat.bucket_offsets = r.array<std::uint32_t>(bucket_count + 1);
  flat.bucket_entries = r.array<std::uint32_t>(flat.bucket_offsets.back());
  flat.bucket_child_start = r.array<std::uint32_t>(bucket_count + 1);
  flat.child_h2 = r.array<std::uint64_t>(flat.bucket_child_start.back());
  flat.child_offsets = r.array<std::uint32_t>(flat.child_h2.size() + 1);
  flat.child_entries = r.array<std::uint32_t>(flat.child_offsets.back());
  if (r.remaining() != 0) r.fail("trailing bytes");
  // Full structural validation (offset monotonicity, entry ranges, bucket
  // ordering) happens in detect::SkeletonIndex::adopt_view — the arrays
  // here are bounds-correct spans either way.
  return flat;
}

}  // namespace

DbArtifact DbArtifact::load(const std::string& path) {
  DbArtifact artifact;
  artifact.map_ = MappedFile::open(path);
  const auto* base = artifact.map_->data();
  const auto size = artifact.map_->size();

  if (size < sizeof(FileHeader)) corrupt(path, "smaller than the file header");
  FileHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (header.magic != kMagic) corrupt(path, "bad magic (not a ShamFinder DB)");
  if (header.endian != kEndianMarker) {
    corrupt(path, "endianness mismatch (artifact written on a foreign host)");
  }
  if (header.format_version != kFormatVersion) {
    corrupt(path, "unsupported format version " +
                      std::to_string(header.format_version) + " (reader supports " +
                      std::to_string(kFormatVersion) + ")");
  }
  if (header.header_bytes != sizeof(FileHeader)) {
    corrupt(path, "header size mismatch");
  }
  if (header.header_checksum !=
      fnv1a64(base, sizeof(FileHeader) - sizeof(std::uint64_t))) {
    corrupt(path, "header checksum mismatch");
  }
  if (header.file_size != size) {
    corrupt(path, "file size mismatch (truncated or padded artifact)");
  }
  const std::uint64_t table_bytes =
      std::uint64_t{header.section_count} * sizeof(SectionEntry);
  if (table_bytes > size - sizeof(FileHeader)) {
    corrupt(path, "section table exceeds the file");
  }
  const auto* table_base = base + sizeof(FileHeader);
  if (header.section_table_checksum !=
      fnv1a64(table_base, static_cast<std::size_t>(table_bytes))) {
    corrupt(path, "section table checksum mismatch");
  }
  artifact.header_ = header;

  bool seen_simchar = false;
  bool seen_homoglyph = false;
  bool seen_references = false;
  bool seen_skeleton = false;
  bool seen_panel = false;
  for (std::uint32_t s = 0; s < header.section_count; ++s) {
    SectionEntry entry;
    std::memcpy(&entry, table_base + s * sizeof(SectionEntry), sizeof(entry));
    if (entry.offset % kSectionAlign != 0) {
      corrupt(path, "section " + std::to_string(s) + " is misaligned");
    }
    if (entry.offset > size || entry.size > size - entry.offset) {
      corrupt(path, "section " + std::to_string(s) + " exceeds the file");
    }
    const auto* payload = base + entry.offset;
    if (entry.checksum != fnv1a64(payload, static_cast<std::size_t>(entry.size))) {
      corrupt(path, "section " + std::to_string(s) + " checksum mismatch");
    }
    SpanReader reader{payload, static_cast<std::size_t>(entry.size),
                      std::to_string(s)};
    switch (entry.tag) {
      case kSecSimChar:
        if (seen_simchar) corrupt(path, "duplicate SIMC section");
        seen_simchar = true;
        artifact.simchar_ = parse_simchar(std::move(reader));
        break;
      case kSecHomoglyph:
        if (seen_homoglyph) corrupt(path, "duplicate HGDB section");
        seen_homoglyph = true;
        artifact.homoglyph_ = parse_homoglyph(std::move(reader), header.generation);
        break;
      case kSecReferences:
        if (seen_references) corrupt(path, "duplicate REFS section");
        seen_references = true;
        artifact.references_ = parse_references(std::move(reader));
        break;
      case kSecSkeleton:
        if (seen_skeleton) corrupt(path, "duplicate SKEL section");
        seen_skeleton = true;
        artifact.skeleton_ = parse_skeleton(std::move(reader));
        artifact.has_skeleton_ = true;
        break;
      case kSecGlyphPanel: {
        if (seen_panel) corrupt(path, "duplicate GPAN section");
        seen_panel = true;
        const auto count = reader.scalar<std::uint64_t>();
        const auto stride = reader.scalar<std::uint64_t>();
        artifact.glyph_cps_ =
            reader.array<unicode::CodePoint>(count);
        artifact.glyph_popcounts_ = reader.array<std::int32_t>(count);
        const auto expected_stride =
            count == 0 ? 0
                       : (count + kernels::kPanelPad - 1) / kernels::kPanelPad *
                             kernels::kPanelPad;
        if (stride != expected_stride) {
          reader.fail("panel stride violates the pad contract");
        }
        reader.align(kSectionAlign);
        const auto words = reader.array<std::uint64_t>(kernels::kGlyphWords * stride);
        if (reader.remaining() != 0) reader.fail("trailing bytes");
        // The SIMD tail contract: pad columns must be zero (a vector lane
        // may read past size(); a nonzero pad would poison batched ∆).
        for (std::size_t w = 0; w < kernels::kGlyphWords; ++w) {
          for (auto c = count; c < stride; ++c) {
            if (words[w * stride + c] != 0) reader.fail("nonzero panel pad");
          }
        }
        artifact.panel_count_ = static_cast<std::size_t>(count);
        artifact.panel_stride_ = static_cast<std::size_t>(stride);
        artifact.panel_words_ = words.data();
        artifact.has_panel_ = true;
        break;
      }
      default:
        // Unknown tag: forward-compatible skip (its checksum verified).
        break;
    }
  }
  if (!seen_simchar || !seen_homoglyph) {
    corrupt(path, "missing mandatory SIMC/HGDB section");
  }
  // Cross-section trust checks. Checksums only prove self-consistency (an
  // attacker computes them like anyone else), so the SKEL section must be
  // pinned to the REFS labels it indexes: entries are indexes into the
  // reference list, and a skeleton larger than the list would hand detect()
  // out-of-bounds reference indexes, not just wrong answers. Likewise a
  // fingerprint stamped with no labels describes nothing.
  if (artifact.has_skeleton_) {
    if (artifact.references_.empty()) {
      corrupt(path, "SKEL section without the REFS labels it indexes");
    }
    if (artifact.skeleton_.entry_hashes.size() != artifact.references_.size()) {
      corrupt(path, "skeleton entry count disagrees with the reference list");
    }
  }
  if (artifact.references_.empty() && header.reference_fingerprint != 0) {
    corrupt(path, "reference fingerprint stamped without a REFS section");
  }
  return artifact;
}

std::size_t DbArtifact::file_size() const noexcept { return map_->size(); }

simchar::SimCharDb DbArtifact::simchar() const {
  return simchar::SimCharDb::adopt_view(simchar_, map_);
}

homoglyph::HomoglyphDb DbArtifact::homoglyph() const {
  return homoglyph::HomoglyphDb::adopt_view(homoglyph_, map_);
}

kernels::GlyphPanel DbArtifact::glyph_panel() const {
  if (!has_panel_) {
    throw std::runtime_error{"db artifact: no glyph panel section"};
  }
  return kernels::GlyphPanel::adopt_view(panel_words_, panel_count_,
                                         panel_stride_, map_);
}

}  // namespace sham::db
