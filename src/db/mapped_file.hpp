// Read-only memory mapping of one file (the DB-artifact load path).
// POSIX-only, like util::ThreadPool's affinity code — the project targets
// Linux/macOS. The mapping is immutable and shared: DbArtifact hands the
// MappedFile out as the shared_ptr keepalive behind every adopted view.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace sham::db {

class MappedFile {
 public:
  /// Map `path` read-only. Throws std::runtime_error (with the errno text)
  /// when the file cannot be opened, stat'd, or mapped; empty files are
  /// rejected here so callers never hold a zero-length mapping.
  static std::shared_ptr<const MappedFile> open(const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] const std::byte* data() const noexcept {
    return static_cast<const std::byte*>(data_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  MappedFile(void* data, std::size_t size) noexcept : data_{data}, size_{size} {}

  void* data_;
  std::size_t size_;
};

}  // namespace sham::db
