// On-disk layout of the ShamFinder DB artifact (DESIGN.md §10).
//
// One flat, section-tagged binary holding the full preprocessing output
// (SimChar pairs + posting index, the homoglyph pair graph with its
// union-find canonical map, the reference-side skeleton index, and the
// word-major glyph panel), laid out so a reader can mmap the file and use
// every array *in place* — no parsing, no allocation proportional to the
// database. GGUF-style: fixed header, section table, 64-byte-aligned
// sections with per-section checksums, little-endian fixed-width fields.
//
//   ┌────────────────────┐ offset 0
//   │ FileHeader (64 B)  │ magic, endian marker, format version,
//   │                    │ generation stamp, section count, checksums
//   ├────────────────────┤ offset 64
//   │ SectionEntry[n]    │ tag, offset, size, FNV-1a64 checksum each
//   ├────────────────────┤ 64-byte aligned
//   │ section payload    │ scalars first, then 8-byte-aligned arrays
//   ├────────────────────┤ 64-byte aligned
//   │ ...                │
//   └────────────────────┘
//
// Safety: every decode path goes through SpanReader, which bounds-checks
// and alignment-checks before handing out spans — a truncated, bit-flipped
// or hostile file produces std::runtime_error, never UB (fuzzed in
// tests/test_db.cpp). Checksums cover each section's payload bytes;
// alignment gaps between sections are the only unchecksummed bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace sham::db {

/// "SHAMDB1\0" as a little-endian u64.
inline constexpr std::uint64_t kMagic = 0x003142444D414853ULL;
/// Bumped on any layout change; readers reject other versions.
inline constexpr std::uint32_t kFormatVersion = 1;
/// Written as the native byte order; a reader on the other endianness sees
/// 0x04030201 and rejects the file (fields are fixed-width native-endian,
/// which in practice means little-endian everywhere we build).
inline constexpr std::uint32_t kEndianMarker = 0x01020304;
/// Section payloads start on cache-line boundaries so in-place arrays
/// (notably the glyph panel's word rows) inherit 64-byte alignment from
/// the page-aligned mapping.
inline constexpr std::size_t kSectionAlign = 64;

[[nodiscard]] constexpr std::uint32_t fourcc(char a, char b, char c, char d) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/// Section tags. Unknown tags are skipped by readers (forward-compatible
/// additions), but the checksum of every section is still verified.
inline constexpr std::uint32_t kSecSimChar = fourcc('S', 'I', 'M', 'C');
inline constexpr std::uint32_t kSecHomoglyph = fourcc('H', 'G', 'D', 'B');
inline constexpr std::uint32_t kSecReferences = fourcc('R', 'E', 'F', 'S');
inline constexpr std::uint32_t kSecSkeleton = fourcc('S', 'K', 'E', 'L');
inline constexpr std::uint32_t kSecGlyphPanel = fourcc('G', 'P', 'A', 'N');

struct FileHeader {
  std::uint64_t magic = kMagic;
  std::uint32_t endian = kEndianMarker;
  std::uint32_t format_version = kFormatVersion;
  /// HomoglyphDb::generation() at serialization time. Engines loading the
  /// artifact key their caches under this stamp, which makes the in-process
  /// fingerprint cache durable across runs of the same artifact.
  std::uint64_t generation = 0;
  /// Total file size; must equal the mapped size exactly.
  std::uint64_t file_size = 0;
  std::uint32_t section_count = 0;
  std::uint32_t header_bytes = 0;  // sizeof(FileHeader), a layout cross-check
  /// FNV-1a64 over the section table (section_count * sizeof(SectionEntry)).
  std::uint64_t section_table_checksum = 0;
  /// detect::label_set_fingerprint of the REFS section's label list
  /// (0 when the artifact carries no references).
  std::uint64_t reference_fingerprint = 0;
  /// FNV-1a64 over the preceding 56 bytes of this header.
  std::uint64_t header_checksum = 0;
};
static_assert(sizeof(FileHeader) == 64, "FileHeader is exactly one cache line");

struct SectionEntry {
  std::uint32_t tag = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;  // from file start; multiple of kSectionAlign
  std::uint64_t size = 0;    // payload bytes covered by `checksum`
  std::uint64_t checksum = 0;
};
static_assert(sizeof(SectionEntry) == 32);

/// Byte-wise FNV-1a64 (the artifact checksum; independent of the kernels'
/// u32-stream fnv1a_span so the two can never be confused).
[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Bounds- and alignment-checked cursor over one mapped section. Every
/// failure throws std::runtime_error naming the section — the loader's
/// guarantee that corrupt input can never become an out-of-bounds read.
class SpanReader {
 public:
  SpanReader(const std::byte* base, std::size_t size, std::string what)
      : base_{base}, size_{size}, what_{std::move(what)} {}

  template <typename T>
  [[nodiscard]] T scalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > size_ - pos_) fail("truncated scalar");
    T value;
    std::memcpy(&value, base_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Hand out `count` elements *in place*. `count` is attacker-controlled:
  /// the bound check divides instead of multiplying so it cannot overflow.
  template <typename T>
  [[nodiscard]] std::span<const T> array(std::uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    align(alignof(T));
    if (count > (size_ - pos_) / sizeof(T)) fail("truncated array");
    const auto* p = reinterpret_cast<const T*>(base_ + pos_);
    pos_ += static_cast<std::size_t>(count) * sizeof(T);
    return {p, static_cast<std::size_t>(count)};
  }

  /// Advance to the next multiple of `a` (within the section). The writer
  /// emits the same pad, so reader and writer cursors stay in lockstep.
  void align(std::size_t a) {
    const auto rem = (reinterpret_cast<std::uintptr_t>(base_) + pos_) % a;
    if (rem == 0) return;
    const auto pad = a - rem;
    if (pad > size_ - pos_) fail("truncated at alignment pad");
    pos_ += pad;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error{"db artifact: section " + what_ + ": " + msg};
  }

 private:
  const std::byte* base_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string what_;
};

// --- Skeleton index flat layout ------------------------------------------
//
// The serialized form of detect::SkeletonIndex (the detect layer converts
// to/from these via SkeletonIndex::to_flat / adopt_view; the db layer only
// moves the arrays). Buckets are sorted by primary hash; `bucket_entries`
// holds each bucket's ascending entry union back-to-back. Split buckets
// additionally list their secondary-hash children: children of bucket i
// occupy [bucket_child_start[i], bucket_child_start[i+1]) in `child_h2` /
// `child_offsets` (h2-ascending), with entries duplicated into
// `child_entries` so both the legacy whole-bucket probe and the
// split-aware probe read one contiguous span.

struct SkeletonFlat {
  std::uint64_t hash_mask = ~0ULL;
  std::uint64_t max_bucket_occupancy = 0;
  std::uint64_t non_empty_buckets = 0;
  std::uint64_t split_buckets = 0;
  std::vector<std::uint64_t> entry_hashes;
  std::vector<std::uint64_t> entry_h2;  // empty unless max_bucket_occupancy > 0
  std::vector<std::uint64_t> bucket_hashes;       // ascending
  std::vector<std::uint32_t> bucket_offsets;      // size B + 1
  std::vector<std::uint32_t> bucket_entries;      // ascending within a bucket
  std::vector<std::uint32_t> bucket_child_start;  // size B + 1
  std::vector<std::uint64_t> child_h2;            // ascending within a bucket
  std::vector<std::uint32_t> child_offsets;       // size C + 1
  std::vector<std::uint32_t> child_entries;
};

struct SkeletonFlatView {
  std::uint64_t hash_mask = ~0ULL;
  std::uint64_t max_bucket_occupancy = 0;
  std::uint64_t non_empty_buckets = 0;
  std::uint64_t split_buckets = 0;
  std::span<const std::uint64_t> entry_hashes;
  std::span<const std::uint64_t> entry_h2;
  std::span<const std::uint64_t> bucket_hashes;
  std::span<const std::uint32_t> bucket_offsets;
  std::span<const std::uint32_t> bucket_entries;
  std::span<const std::uint32_t> bucket_child_start;
  std::span<const std::uint64_t> child_h2;
  std::span<const std::uint32_t> child_offsets;
  std::span<const std::uint32_t> child_entries;
};

}  // namespace sham::db
