// The DB artifact: writer (build-time serialization of the full
// preprocessing output) and loader (mmap + validate + adopt-in-place).
//
//   write_db_file(path, request)   — SimChar + homoglyph DB (mandatory),
//                                    plus optional reference labels, a
//                                    reference-side skeleton index in its
//                                    flat form, and the rendered glyph
//                                    panel. Atomic and crash-durable:
//                                    writes path + ".tmp", fsyncs it, and
//                                    renames over the target.
//   DbArtifact::load(path)         — maps the file, verifies header and
//                                    per-section checksums, structurally
//                                    validates every index array (offsets
//                                    monotonic, postings in range, keys
//                                    sorted), then exposes zero-copy views.
//                                    Any inconsistency throws
//                                    std::runtime_error — never UB.
//
// The loader never materializes the big arrays: simchar()/homoglyph()
// return view-mode databases whose queries read the mapping in place, and
// glyph_panel() adopts the mapped word rows directly (they are 64-byte
// aligned by construction). Multiple processes loading one artifact share
// its pages through the page cache.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "db/format.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "kernels/glyph_panel.hpp"
#include "simchar/simchar.hpp"
#include "unicode/codepoint.hpp"

namespace sham::db {

class MappedFile;

/// Everything one artifact carries. `simchar` and `homoglyph` are
/// mandatory; the rest is optional (empty spans / null pointers skip the
/// section). The skeleton index arrives pre-flattened because the db
/// layer sits below detect — detect::SkeletonIndex::to_flat produces it.
struct WriteRequest {
  const simchar::SimCharDb* simchar = nullptr;
  const homoglyph::HomoglyphDb* homoglyph = nullptr;
  /// Reference labels the skeleton section indexes (ASCII, LDH).
  std::span<const std::string> references{};
  /// detect::label_set_fingerprint(references); stored in the header so a
  /// loading engine can key its reference-side cache without recomputing.
  std::uint64_t reference_fingerprint = 0;
  const SkeletonFlat* skeleton = nullptr;
  /// Step I output: the rendered repertoire panel plus its parallel code
  /// point and ink-count arrays (simchar::RepertoirePanel's shape).
  const kernels::GlyphPanel* panel = nullptr;
  std::span<const unicode::CodePoint> glyph_cps{};
  std::span<const std::int32_t> glyph_popcounts{};
};

/// Serialize to `path`. Throws std::invalid_argument on a malformed
/// request (missing mandatory parts, parallel-array size mismatch) and
/// std::runtime_error on I/O failure.
void write_db_file(const std::string& path, const WriteRequest& request);

class DbArtifact {
 public:
  /// Map and validate `path`. Throws std::runtime_error with a diagnostic
  /// naming the failing check on any corruption (wrong magic/endianness/
  /// version, truncation, checksum mismatch, misaligned or out-of-bounds
  /// section, duplicate sections, structurally inconsistent index arrays,
  /// or a SKEL section whose entry count disagrees with the REFS labels
  /// it indexes — skeleton entries are indexes into that list).
  static DbArtifact load(const std::string& path);

  DbArtifact(DbArtifact&&) noexcept = default;
  DbArtifact& operator=(DbArtifact&&) noexcept = default;

  /// HomoglyphDb::generation() stamped at serialization time.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return header_.generation;
  }
  [[nodiscard]] std::uint64_t reference_fingerprint() const noexcept {
    return header_.reference_fingerprint;
  }
  [[nodiscard]] std::size_t file_size() const noexcept;

  /// View-mode databases reading the mapping in place (zero-copy; the
  /// returned object keeps the mapping alive).
  [[nodiscard]] simchar::SimCharDb simchar() const;
  [[nodiscard]] homoglyph::HomoglyphDb homoglyph() const;

  /// Reference labels (materialized — they are small), empty when the
  /// artifact carries none.
  [[nodiscard]] const std::vector<std::string>& references() const noexcept {
    return references_;
  }

  [[nodiscard]] bool has_skeleton() const noexcept { return has_skeleton_; }
  /// Flat skeleton-index arrays for detect::SkeletonIndex::adopt_view
  /// (which performs the final structural validation).
  [[nodiscard]] const SkeletonFlatView& skeleton() const noexcept {
    return skeleton_;
  }

  [[nodiscard]] bool has_glyph_panel() const noexcept { return has_panel_; }
  /// The mapped repertoire panel, adopted in place — word rows are 64-byte
  /// aligned in the file, so the batched ∆ kernels stream straight from
  /// the page cache.
  [[nodiscard]] kernels::GlyphPanel glyph_panel() const;
  [[nodiscard]] std::span<const unicode::CodePoint> glyph_cps() const noexcept {
    return glyph_cps_;
  }
  [[nodiscard]] std::span<const std::int32_t> glyph_popcounts() const noexcept {
    return glyph_popcounts_;
  }

  /// The mapping keepalive, for adopting further views over the artifact.
  [[nodiscard]] std::shared_ptr<const void> backing() const noexcept {
    return map_;
  }

 private:
  DbArtifact() = default;

  std::shared_ptr<const MappedFile> map_;
  FileHeader header_{};
  simchar::SimCharDb::Flat simchar_{};
  homoglyph::HomoglyphDb::FlatView homoglyph_{};
  std::vector<std::string> references_;
  bool has_skeleton_ = false;
  SkeletonFlatView skeleton_{};
  bool has_panel_ = false;
  std::size_t panel_count_ = 0;
  std::size_t panel_stride_ = 0;
  const std::uint64_t* panel_words_ = nullptr;
  std::span<const unicode::CodePoint> glyph_cps_{};
  std::span<const std::int32_t> glyph_popcounts_{};
};

}  // namespace sham::db
