#include "db/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace sham::db {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error{"db artifact: " + path + ": " + what + ": " +
                           std::strerror(errno)};
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "open failed");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "fstat failed");
  }
  if (st.st_size <= 0) {
    ::close(fd);
    throw std::runtime_error{"db artifact: " + path + ": empty file"};
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int saved = errno;
  ::close(fd);  // the mapping holds its own reference
  if (data == MAP_FAILED) {
    errno = saved;
    fail(path, "mmap failed");
  }
  return std::shared_ptr<const MappedFile>{new MappedFile{data, size}};
}

MappedFile::~MappedFile() { ::munmap(data_, size_); }

}  // namespace sham::db
