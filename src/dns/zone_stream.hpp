// Incremental, chunk-fed zone-file reader — the bounded-memory core every
// zone entry point (parse_zone, parse_zone_stream, parse_zone_file) is
// built on. Registry zones run to tens of GB in the paper's setting
// (141 M .com domains, Section 5.2), so the reader never materializes the
// file: callers feed() arbitrary byte chunks — split anywhere, including
// mid-token, mid-comment, or between a CR and its LF — and records are
// delivered to the sink as soon as their line completes. Parser state
// ($ORIGIN / $TTL in effect, the previous owner for blank-owner
// continuation lines, the running line number for diagnostics) carries
// across chunk boundaries, so a stream cut into 1-byte chunks yields the
// record sequence of a one-shot parse, byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "dns/records.hpp"
#include "dns/zone_file.hpp"

namespace sham::dns {

class ZoneStreamReader {
 public:
  using Sink = std::function<void(const ResourceRecord&)>;

  /// `sink` is invoked once per parsed record, in file order.
  explicit ZoneStreamReader(Sink sink);

  /// Consume the next chunk of zone text. Chunks may be any size (one
  /// byte up to the whole file) and may split the text anywhere; CRLF and
  /// LF line endings are both accepted. Throws ZoneParseError (with the
  /// absolute line number) on a malformed record; the reader is then in
  /// an unspecified state and must be discarded.
  void feed(std::string_view chunk);

  /// Flush a trailing unterminated line (files need not end in a
  /// newline). Must be called exactly once, after the last feed();
  /// further feed() calls are rejected. Returns records().
  std::size_t finish();

  /// Records delivered to the sink so far.
  [[nodiscard]] std::size_t records() const noexcept { return records_; }
  /// Lines fully processed so far.
  [[nodiscard]] std::size_t lines() const noexcept { return line_no_; }

  /// True once a $ORIGIN directive has been seen (including the absolute
  /// root "$ORIGIN .", whose origin() is the empty string).
  [[nodiscard]] bool origin_seen() const noexcept { return origin_seen_; }
  /// The $ORIGIN currently in effect, without its trailing dot; empty
  /// when unset or when the origin is the DNS root.
  [[nodiscard]] const std::string& origin() const noexcept { return origin_; }
  /// The $TTL currently in effect (the zone-file default until the first
  /// $TTL directive).
  [[nodiscard]] std::uint32_t default_ttl() const noexcept { return default_ttl_; }

 private:
  void process_line(std::string_view raw_line);

  Sink sink_;
  std::string origin_;
  bool origin_seen_ = false;
  std::uint32_t default_ttl_ = 86400;
  std::string last_owner_;
  /// Partial final line of the previous chunk, awaiting its newline.
  std::string pending_;
  std::size_t line_no_ = 0;
  std::size_t records_ = 0;
  bool finished_ = false;
};

}  // namespace sham::dns
