// DNS resource records and record sets — the subset a registry zone file
// and this paper's measurement pipeline use (NS for delegation, A for
// liveness, MX for mail capability; Section 6.1-6.2).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dns/domain.hpp"

namespace sham::dns {

enum class RecordType : std::uint8_t { kNs, kA, kAaaa, kMx, kCname, kTxt };

[[nodiscard]] std::string_view record_type_name(RecordType type) noexcept;
[[nodiscard]] std::optional<RecordType> parse_record_type(std::string_view text) noexcept;

/// IPv4 address, host byte order.
struct Ipv4 {
  std::uint32_t value = 0;

  static std::optional<Ipv4> parse(std::string_view text);
  [[nodiscard]] std::string str() const;
  [[nodiscard]] bool operator==(const Ipv4&) const = default;
};

struct ResourceRecord {
  DomainName owner;
  RecordType type = RecordType::kA;
  std::uint32_t ttl = 86400;
  // rdata (union-by-convention; the fields used depend on `type`)
  std::string target;     // NS/CNAME/MX host, TXT payload
  Ipv4 address;           // A
  std::uint16_t priority = 0;  // MX

  [[nodiscard]] std::string rdata_str() const;

  [[nodiscard]] bool operator==(const ResourceRecord&) const = default;
};

}  // namespace sham::dns
