#include "dns/zone_file.hpp"

#include <algorithm>
#include <fstream>

#include "dns/zone_stream.hpp"

namespace sham::dns {

// All three entry points are thin shells over the incremental
// ZoneStreamReader core (zone_stream.hpp) — one parser, three feeding
// disciplines. parse_zone additionally materializes the record list and
// carries the directive state (the origin/TTL in effect at end of file)
// out of the reader.

void parse_zone_stream(std::string_view text,
                       const std::function<void(const ResourceRecord&)>& sink) {
  ZoneStreamReader reader{sink};
  reader.feed(text);
  reader.finish();
}

Zone parse_zone(std::string_view text) {
  Zone zone;
  ZoneStreamReader reader{
      [&](const ResourceRecord& r) { zone.records.push_back(r); }};
  reader.feed(text);
  reader.finish();
  // The origin/TTL in effect at end of file — a mid-file $ORIGIN change
  // must be reflected, not latched at the first directive (records are
  // stored fully qualified, so only the final state is meaningful).
  // "$ORIGIN ." (the root) leaves the origin empty.
  if (!reader.origin().empty()) {
    zone.origin = DomainName::parse_or_throw(reader.origin());
  }
  zone.default_ttl = reader.default_ttl();
  return zone;
}

std::size_t parse_zone_file(const std::string& path,
                            const std::function<void(const ResourceRecord&)>& sink) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"parse_zone_file: cannot open " + path};
  ZoneStreamReader reader{sink};
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    reader.feed(std::string_view{buffer, static_cast<std::size_t>(in.gcount())});
  }
  return reader.finish();
}

std::string serialize_record(const ResourceRecord& r) {
  std::string out;
  out += r.owner.str() + ". " + std::to_string(r.ttl) + " IN " +
         std::string{record_type_name(r.type)} + " " + r.rdata_str();
  if (r.type == RecordType::kNs || r.type == RecordType::kCname ||
      r.type == RecordType::kMx) {
    out += '.';  // absolute targets
  }
  out += '\n';
  return out;
}

std::string serialize_zone(const Zone& zone) {
  std::string out;
  if (!zone.origin.str().empty()) {
    out += "$ORIGIN " + zone.origin.str() + ".\n";
  }
  out += "$TTL " + std::to_string(zone.default_ttl) + "\n";
  for (const auto& r : zone.records) out += serialize_record(r);
  return out;
}

std::vector<DomainName> Zone::owners() const {
  std::vector<DomainName> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.owner);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace sham::dns
