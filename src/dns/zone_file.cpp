#include "dns/zone_file.hpp"

#include <algorithm>
#include <fstream>

#include "util/strings.hpp"

namespace sham::dns {

namespace {

struct ParserState {
  DomainName origin;
  std::uint32_t default_ttl = 86400;
  std::string last_owner;
};

// Resolve an owner/target token against $ORIGIN: "@" means the origin,
// names without a trailing dot are origin-relative, names with one are
// absolute.
std::string resolve_name(std::string_view token, const ParserState& state,
                         std::size_t line_no) {
  if (token == "@") {
    if (state.origin.str().empty()) throw ZoneParseError{line_no, "'@' without $ORIGIN"};
    return state.origin.str();
  }
  std::string name{token};
  if (!name.empty() && name.back() == '.') {
    name.pop_back();
  } else if (!state.origin.str().empty()) {
    name += '.';
    name += state.origin.str();
  }
  return util::to_lower_ascii(name);
}

void parse_line(std::string_view raw_line, std::size_t line_no, ParserState& state,
                const std::function<void(const ResourceRecord&)>& sink) {
  // Strip comments (zone files quote TXT data; registry zones we model
  // don't contain quoted semicolons, so a plain scan suffices).
  auto line = raw_line;
  if (const auto semi = line.find(';'); semi != std::string_view::npos) {
    line = line.substr(0, semi);
  }
  const bool owner_continuation = !line.empty() && (line[0] == ' ' || line[0] == '\t');
  const auto tokens = util::split_ws(line);
  if (tokens.empty()) return;

  if (tokens[0] == "$ORIGIN") {
    if (tokens.size() != 2) throw ZoneParseError{line_no, "$ORIGIN needs a name"};
    const auto parsed = DomainName::parse(tokens[1]);
    if (!parsed) throw ZoneParseError{line_no, "bad $ORIGIN name"};
    state.origin = *parsed;
    return;
  }
  if (tokens[0] == "$TTL") {
    if (tokens.size() != 2) throw ZoneParseError{line_no, "$TTL needs a value"};
    try {
      state.default_ttl = static_cast<std::uint32_t>(util::parse_u64(tokens[1]));
    } catch (const std::invalid_argument&) {
      throw ZoneParseError{line_no, "bad $TTL value"};
    }
    return;
  }

  std::size_t i = 0;
  std::string owner;
  if (owner_continuation) {
    if (state.last_owner.empty()) throw ZoneParseError{line_no, "record without owner"};
    owner = state.last_owner;
  } else {
    owner = resolve_name(tokens[i++], state, line_no);
    state.last_owner = owner;
  }

  if (i >= tokens.size()) throw ZoneParseError{line_no, "missing record type"};

  ResourceRecord record;
  const auto parsed_owner = DomainName::parse(owner);
  if (!parsed_owner) throw ZoneParseError{line_no, "bad owner name: " + owner};
  record.owner = *parsed_owner;
  record.ttl = state.default_ttl;

  // Optional TTL and/or class ("IN") in either order before the type.
  for (int guard = 0; guard < 2 && i < tokens.size(); ++guard) {
    const auto token = tokens[i];
    if (token == "IN") {
      ++i;
      continue;
    }
    if (!token.empty() && token[0] >= '0' && token[0] <= '9' &&
        !parse_record_type(token)) {
      try {
        record.ttl = static_cast<std::uint32_t>(util::parse_u64(token));
        ++i;
        continue;
      } catch (const std::invalid_argument&) {
        throw ZoneParseError{line_no, "bad TTL"};
      }
    }
    break;
  }

  if (i >= tokens.size()) throw ZoneParseError{line_no, "missing record type"};
  const auto type = parse_record_type(tokens[i]);
  if (!type) throw ZoneParseError{line_no, "unknown record type: " + std::string{tokens[i]}};
  record.type = *type;
  ++i;

  switch (record.type) {
    case RecordType::kA: {
      if (i >= tokens.size()) throw ZoneParseError{line_no, "A record needs an address"};
      const auto addr = Ipv4::parse(tokens[i]);
      if (!addr) throw ZoneParseError{line_no, "bad IPv4 address"};
      record.address = *addr;
      break;
    }
    case RecordType::kMx: {
      if (i + 1 >= tokens.size()) throw ZoneParseError{line_no, "MX needs priority + host"};
      try {
        record.priority = static_cast<std::uint16_t>(util::parse_u64(tokens[i]));
      } catch (const std::invalid_argument&) {
        throw ZoneParseError{line_no, "bad MX priority"};
      }
      record.target = resolve_name(tokens[i + 1], state, line_no);
      break;
    }
    case RecordType::kNs:
    case RecordType::kCname: {
      if (i >= tokens.size()) throw ZoneParseError{line_no, "record needs a target"};
      record.target = resolve_name(tokens[i], state, line_no);
      break;
    }
    case RecordType::kAaaa:
    case RecordType::kTxt: {
      if (i >= tokens.size()) throw ZoneParseError{line_no, "record needs rdata"};
      record.target = std::string{tokens[i]};
      break;
    }
  }
  sink(record);
}

}  // namespace

void parse_zone_stream(std::string_view text,
                       const std::function<void(const ResourceRecord&)>& sink) {
  ParserState state;
  std::size_t line_no = 0;
  for (const auto line : util::split(text, '\n')) {
    ++line_no;
    parse_line(line, line_no, state, sink);
  }
}

Zone parse_zone(std::string_view text) {
  Zone zone;
  ParserState state;
  std::size_t line_no = 0;
  bool origin_seen = false;
  for (const auto line : util::split(text, '\n')) {
    ++line_no;
    parse_line(line, line_no, state, [&](const ResourceRecord& r) {
      zone.records.push_back(r);
    });
    if (!origin_seen && !state.origin.str().empty()) {
      zone.origin = state.origin;
      origin_seen = true;
    }
    zone.default_ttl = state.default_ttl;
  }
  return zone;
}

std::size_t parse_zone_file(const std::string& path,
                            const std::function<void(const ResourceRecord&)>& sink) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"parse_zone_file: cannot open " + path};
  ParserState state;
  std::string line;
  std::size_t line_no = 0;
  std::size_t records = 0;
  while (std::getline(in, line)) {
    ++line_no;
    parse_line(line, line_no, state, [&](const ResourceRecord& r) {
      ++records;
      sink(r);
    });
  }
  return records;
}

std::string serialize_zone(const Zone& zone) {
  std::string out;
  if (!zone.origin.str().empty()) {
    out += "$ORIGIN " + zone.origin.str() + ".\n";
  }
  out += "$TTL " + std::to_string(zone.default_ttl) + "\n";
  for (const auto& r : zone.records) {
    out += r.owner.str() + ". " + std::to_string(r.ttl) + " IN " +
           std::string{record_type_name(r.type)} + " " + r.rdata_str();
    if (r.type == RecordType::kNs || r.type == RecordType::kCname ||
        r.type == RecordType::kMx) {
      out += '.';  // absolute targets
    }
    out += '\n';
  }
  return out;
}

std::vector<DomainName> Zone::owners() const {
  std::vector<DomainName> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.owner);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace sham::dns
