#include "dns/zone_stream.hpp"

#include <limits>

#include "util/strings.hpp"

namespace sham::dns {

namespace {

/// Parse a non-negative decimal token, rejecting values above `max` with
/// a diagnostic naming `what` — registry feeds with corrupted TTL or
/// priority columns must fail loudly, not wrap modulo 2^32 / 2^16.
std::uint64_t parse_bounded(std::string_view token, std::uint64_t max,
                            const char* what, std::size_t line_no) {
  std::uint64_t value = 0;
  try {
    value = util::parse_u64(token);
  } catch (const std::invalid_argument&) {
    throw ZoneParseError{line_no, std::string{"bad "} + what + " value: '" +
                                      std::string{token} + "'"};
  }
  if (value > max) {
    throw ZoneParseError{line_no, std::string{what} + " out of range: " +
                                      std::string{token} + " (max " +
                                      std::to_string(max) + ")"};
  }
  return value;
}

}  // namespace

ZoneStreamReader::ZoneStreamReader(Sink sink) : sink_{std::move(sink)} {}

// Resolve an owner/target token against $ORIGIN: "@" means the origin,
// names without a trailing dot are origin-relative, names with one are
// absolute. "$ORIGIN ." (the DNS root) makes relative names absolute
// as-is; the root itself ("@" under it, or a bare ".") is not a
// registrable name and is rejected with a diagnostic instead of being
// collapsed to an empty string.
namespace {

std::string resolve_name(std::string_view token, const std::string& origin,
                         bool origin_seen, std::size_t line_no) {
  if (token == "@") {
    if (!origin_seen) throw ZoneParseError{line_no, "'@' without $ORIGIN"};
    if (origin.empty()) {
      throw ZoneParseError{line_no, "'@' under '$ORIGIN .' names the DNS root"};
    }
    return origin;
  }
  if (token == ".") {
    throw ZoneParseError{line_no, "the DNS root '.' is not a valid name here"};
  }
  std::string name{token};
  if (!name.empty() && name.back() == '.') {
    name.pop_back();
  } else if (origin_seen && !origin.empty()) {
    name += '.';
    name += origin;
  }
  return util::to_lower_ascii(name);
}

}  // namespace

void ZoneStreamReader::process_line(std::string_view raw_line) {
  ++line_no_;
  const std::size_t line_no = line_no_;

  // CRLF: the terminator was consumed by feed(); a trailing CR belongs to
  // the line ending, not the last token.
  auto line = raw_line;
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  // Strip comments (zone files quote TXT data; registry zones we model
  // don't contain quoted semicolons, so a plain scan suffices).
  if (const auto semi = line.find(';'); semi != std::string_view::npos) {
    line = line.substr(0, semi);
  }
  const bool owner_continuation = !line.empty() && (line[0] == ' ' || line[0] == '\t');
  const auto tokens = util::split_ws(line);
  if (tokens.empty()) return;

  if (tokens[0] == "$ORIGIN") {
    if (tokens.size() != 2) throw ZoneParseError{line_no, "$ORIGIN needs a name"};
    if (tokens[1] == ".") {
      // The absolute root: relative names below are already fully
      // qualified. Tracked as the empty origin.
      origin_.clear();
      origin_seen_ = true;
      return;
    }
    const auto parsed = DomainName::parse(tokens[1]);
    if (!parsed) throw ZoneParseError{line_no, "bad $ORIGIN name"};
    origin_ = parsed->str();
    origin_seen_ = true;
    return;
  }
  if (tokens[0] == "$TTL") {
    if (tokens.size() != 2) throw ZoneParseError{line_no, "$TTL needs a value"};
    default_ttl_ = static_cast<std::uint32_t>(parse_bounded(
        tokens[1], std::numeric_limits<std::uint32_t>::max(), "$TTL", line_no));
    return;
  }

  std::size_t i = 0;
  std::string owner;
  if (owner_continuation) {
    if (last_owner_.empty()) throw ZoneParseError{line_no, "record without owner"};
    owner = last_owner_;
  } else {
    owner = resolve_name(tokens[i++], origin_, origin_seen_, line_no);
    last_owner_ = owner;
  }

  if (i >= tokens.size()) throw ZoneParseError{line_no, "missing record type"};

  ResourceRecord record;
  const auto parsed_owner = DomainName::parse(owner);
  if (!parsed_owner) throw ZoneParseError{line_no, "bad owner name: " + owner};
  record.owner = *parsed_owner;
  record.ttl = default_ttl_;

  // Optional TTL and/or class ("IN") in either order before the type.
  for (int guard = 0; guard < 2 && i < tokens.size(); ++guard) {
    const auto token = tokens[i];
    if (token == "IN") {
      ++i;
      continue;
    }
    if (!token.empty() && token[0] >= '0' && token[0] <= '9' &&
        !parse_record_type(token)) {
      record.ttl = static_cast<std::uint32_t>(parse_bounded(
          token, std::numeric_limits<std::uint32_t>::max(), "TTL", line_no));
      ++i;
      continue;
    }
    break;
  }

  if (i >= tokens.size()) throw ZoneParseError{line_no, "missing record type"};
  const auto type = parse_record_type(tokens[i]);
  if (!type) throw ZoneParseError{line_no, "unknown record type: " + std::string{tokens[i]}};
  record.type = *type;
  ++i;

  switch (record.type) {
    case RecordType::kA: {
      if (i >= tokens.size()) throw ZoneParseError{line_no, "A record needs an address"};
      const auto addr = Ipv4::parse(tokens[i]);
      if (!addr) throw ZoneParseError{line_no, "bad IPv4 address"};
      record.address = *addr;
      break;
    }
    case RecordType::kMx: {
      if (i + 1 >= tokens.size()) throw ZoneParseError{line_no, "MX needs priority + host"};
      record.priority = static_cast<std::uint16_t>(parse_bounded(
          tokens[i], std::numeric_limits<std::uint16_t>::max(), "MX priority",
          line_no));
      record.target = resolve_name(tokens[i + 1], origin_, origin_seen_, line_no);
      break;
    }
    case RecordType::kNs:
    case RecordType::kCname: {
      if (i >= tokens.size()) throw ZoneParseError{line_no, "record needs a target"};
      record.target = resolve_name(tokens[i], origin_, origin_seen_, line_no);
      break;
    }
    case RecordType::kAaaa:
    case RecordType::kTxt: {
      if (i >= tokens.size()) throw ZoneParseError{line_no, "record needs rdata"};
      record.target = std::string{tokens[i]};
      break;
    }
  }
  ++records_;
  sink_(record);
}

void ZoneStreamReader::feed(std::string_view chunk) {
  if (finished_) {
    throw std::logic_error{"ZoneStreamReader: feed() after finish()"};
  }
  while (!chunk.empty()) {
    const auto newline = chunk.find('\n');
    if (newline == std::string_view::npos) {
      pending_.append(chunk);
      return;
    }
    if (pending_.empty()) {
      // Complete line lives entirely inside this chunk — parse the view
      // in place, no copy.
      process_line(chunk.substr(0, newline));
    } else {
      pending_.append(chunk.substr(0, newline));
      process_line(pending_);
      pending_.clear();
    }
    chunk.remove_prefix(newline + 1);
  }
}

std::size_t ZoneStreamReader::finish() {
  if (finished_) {
    throw std::logic_error{"ZoneStreamReader: finish() called twice"};
  }
  finished_ = true;
  if (!pending_.empty()) {
    process_line(pending_);
    pending_.clear();
  }
  return records_;
}

}  // namespace sham::dns
