// Domain-name value type and label utilities (wire-format ASCII names,
// case-insensitive, dot-separated; RFC 1035 length limits).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "unicode/codepoint.hpp"

namespace sham::dns {

/// A fully qualified domain name in ASCII wire form without the trailing
/// dot, stored lowercase (e.g. "xn--ggle-0nda.com").
class DomainName {
 public:
  DomainName() = default;

  /// Parse and validate: 1-253 octets, labels 1-63 octets of LDH
  /// (underscore additionally tolerated, as zone files contain service
  /// labels). Returns std::nullopt on violation.
  static std::optional<DomainName> parse(std::string_view text);

  /// Parse, throwing std::invalid_argument on violation.
  static DomainName parse_or_throw(std::string_view text);

  [[nodiscard]] const std::string& str() const noexcept { return name_; }
  [[nodiscard]] std::vector<std::string_view> labels() const;

  /// Top-level domain ("com" for "a.b.com"); empty for single-label names.
  [[nodiscard]] std::string_view tld() const;

  /// The registrable second-level label ("b" for "a.b.com", "b" for
  /// "b.com").
  [[nodiscard]] std::string_view sld() const;

  /// Name with the TLD label removed — the form Algorithm 1 compares
  /// ("google" for "google.com").
  [[nodiscard]] std::string_view without_tld() const;

  /// True if any label carries the IDN ACE prefix.
  [[nodiscard]] bool is_idn() const;

  [[nodiscard]] bool operator==(const DomainName&) const = default;
  [[nodiscard]] auto operator<=>(const DomainName&) const = default;

 private:
  explicit DomainName(std::string name) : name_{std::move(name)} {}
  std::string name_;
};

}  // namespace sham::dns

template <>
struct std::hash<sham::dns::DomainName> {
  std::size_t operator()(const sham::dns::DomainName& d) const noexcept {
    return std::hash<std::string>{}(d.str());
  }
};
