#include "dns/domain.hpp"

#include <stdexcept>

#include "idna/idna.hpp"
#include "util/strings.hpp"

namespace sham::dns {

namespace {

bool valid_label(std::string_view label) {
  if (label.empty() || label.size() > 63) return false;
  for (const char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' ||
                    c == '_';
    if (!ok) return false;
  }
  return label.front() != '-' && label.back() != '-';
}

}  // namespace

std::optional<DomainName> DomainName::parse(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);  // FQDN dot
  if (text.empty() || text.size() > 253) return std::nullopt;
  const std::string lowered = util::to_lower_ascii(text);
  for (const auto label : util::split(lowered, '.')) {
    if (!valid_label(label)) return std::nullopt;
  }
  return DomainName{lowered};
}

DomainName DomainName::parse_or_throw(std::string_view text) {
  auto d = parse(text);
  if (!d) throw std::invalid_argument{"DomainName: invalid name: '" + std::string{text} + "'"};
  return *std::move(d);
}

std::vector<std::string_view> DomainName::labels() const {
  return util::split(name_, '.');
}

std::string_view DomainName::tld() const {
  const auto dot = name_.rfind('.');
  if (dot == std::string::npos) return {};
  return std::string_view{name_}.substr(dot + 1);
}

std::string_view DomainName::sld() const {
  const auto parts = labels();
  if (parts.size() == 1) return parts[0];
  return parts[parts.size() - 2];
}

std::string_view DomainName::without_tld() const {
  const auto dot = name_.rfind('.');
  if (dot == std::string::npos) return std::string_view{name_};
  return std::string_view{name_}.substr(0, dot);
}

bool DomainName::is_idn() const { return idna::is_idn(name_); }

}  // namespace sham::dns
