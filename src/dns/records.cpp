#include "dns/records.hpp"

#include "util/strings.hpp"

namespace sham::dns {

std::string_view record_type_name(RecordType type) noexcept {
  switch (type) {
    case RecordType::kNs: return "NS";
    case RecordType::kA: return "A";
    case RecordType::kAaaa: return "AAAA";
    case RecordType::kMx: return "MX";
    case RecordType::kCname: return "CNAME";
    case RecordType::kTxt: return "TXT";
  }
  return "??";
}

std::optional<RecordType> parse_record_type(std::string_view text) noexcept {
  if (text == "NS") return RecordType::kNs;
  if (text == "A") return RecordType::kA;
  if (text == "AAAA") return RecordType::kAaaa;
  if (text == "MX") return RecordType::kMx;
  if (text == "CNAME") return RecordType::kCname;
  if (text == "TXT") return RecordType::kTxt;
  return std::nullopt;
}

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    std::uint64_t octet = 0;
    for (const char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      octet = octet * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (octet > 255) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4{value};
}

std::string Ipv4::str() const {
  return std::to_string((value >> 24) & 0xFF) + '.' + std::to_string((value >> 16) & 0xFF) +
         '.' + std::to_string((value >> 8) & 0xFF) + '.' + std::to_string(value & 0xFF);
}

std::string ResourceRecord::rdata_str() const {
  switch (type) {
    case RecordType::kA:
      return address.str();
    case RecordType::kMx:
      return std::to_string(priority) + " " + target;
    default:
      return target;
  }
}

}  // namespace sham::dns
