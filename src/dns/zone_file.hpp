// DNS master-file (zone file) reader/writer — the format registries like
// Verisign publish for .com, which is Step 1's input (Section 3.1, 5.2).
// Supports the subset registry zones use: $ORIGIN/$TTL directives,
// owner-relative names, NS/A/AAAA/MX/CNAME/TXT records, ';' comments,
// and blank owner continuation (repeat previous owner).
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dns/records.hpp"

namespace sham::dns {

struct Zone {
  DomainName origin;
  std::uint32_t default_ttl = 86400;
  std::vector<ResourceRecord> records;

  /// Distinct owner names (ascending) — the registered-domain list Step 1
  /// extracts from a zone.
  [[nodiscard]] std::vector<DomainName> owners() const;
};

class ZoneParseError : public std::runtime_error {
 public:
  ZoneParseError(std::size_t line, const std::string& message)
      : std::runtime_error{"zone line " + std::to_string(line) + ": " + message},
        line_{line} {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parse zone text; throws ZoneParseError on malformed input. The
/// returned Zone carries the $ORIGIN/$TTL state in effect at end of file
/// (a mid-file $ORIGIN change is reflected, not latched at the first
/// directive). Implemented over ZoneStreamReader (zone_stream.hpp), as
/// are the two streaming variants below.
[[nodiscard]] Zone parse_zone(std::string_view text);

/// Streaming variant: invoke `sink` per record without materialising the
/// zone (registry zones are tens of GB in the paper's setting).
void parse_zone_stream(std::string_view text,
                       const std::function<void(const ResourceRecord&)>& sink);

/// Serialize one record as a master-file line (absolute owner/target,
/// explicit TTL and class) — the building block of serialize_zone, public
/// so zone writers can stream records to disk without materialising the
/// zone text.
[[nodiscard]] std::string serialize_record(const ResourceRecord& record);

/// Serialize back to master-file text (round-trips with parse_zone).
[[nodiscard]] std::string serialize_zone(const Zone& zone);

/// Stream a zone file from disk line-by-line without loading it into
/// memory (registry zones run to tens of GB; Section 5.2). Throws
/// std::runtime_error if the file cannot be opened, ZoneParseError on
/// malformed records. Returns the number of records delivered to `sink`.
std::size_t parse_zone_file(const std::string& path,
                            const std::function<void(const ResourceRecord&)>& sink);

}  // namespace sham::dns
