#include "dns/langid.hpp"

#include <algorithm>
#include <array>

#include "unicode/script.hpp"

namespace sham::dns {

std::string_view language_name(Language lang) noexcept {
  switch (lang) {
    case Language::kChinese: return "Chinese";
    case Language::kKorean: return "Korean";
    case Language::kJapanese: return "Japanese";
    case Language::kGerman: return "German";
    case Language::kTurkish: return "Turkish";
    case Language::kFrench: return "French";
    case Language::kSpanish: return "Spanish";
    case Language::kPortuguese: return "Portuguese";
    case Language::kPolish: return "Polish";
    case Language::kCzech: return "Czech";
    case Language::kVietnamese: return "Vietnamese";
    case Language::kNordic: return "Nordic";
    case Language::kRussian: return "Russian";
    case Language::kArabic: return "Arabic";
    case Language::kThai: return "Thai";
    case Language::kGreek: return "Greek";
    case Language::kHebrew: return "Hebrew";
    case Language::kHindi: return "Hindi";
    case Language::kTamil: return "Tamil";
    case Language::kEnglishAscii: return "English/ASCII";
    case Language::kOther: return "Other";
  }
  return "??";
}

namespace {

bool contains_any(const unicode::U32String& text,
                  std::initializer_list<unicode::CodePoint> set) {
  return std::any_of(text.begin(), text.end(), [&](unicode::CodePoint cp) {
    return std::find(set.begin(), set.end(), cp) != set.end();
  });
}

Language classify_latin(const unicode::U32String& label) {
  // Characteristic letters, checked in specificity order.
  if (contains_any(label, {0x0131, 0x011F, 0x015F, 0x0130})) return Language::kTurkish;   // ı ğ ş İ
  if (contains_any(label, {0x00DF, 0x00E4, 0x00F6, 0x00FC})) return Language::kGerman;    // ß ä ö ü
  if (contains_any(label, {0x0105, 0x0119, 0x0142, 0x017C, 0x017A})) return Language::kPolish;
  if (contains_any(label, {0x011B, 0x0159, 0x016F, 0x010D, 0x0161})) return Language::kCzech;
  if (contains_any(label, {0x01A1, 0x01B0, 0x0111, 0x1EA1, 0x1EBF})) return Language::kVietnamese;
  if (contains_any(label, {0x00E5, 0x00F8, 0x00E6})) return Language::kNordic;            // å ø æ
  if (contains_any(label, {0x00E3, 0x00F5})) return Language::kPortuguese;                // ã õ
  if (contains_any(label, {0x00F1, 0x00ED, 0x00F3, 0x00FA})) return Language::kSpanish;   // ñ í ó ú
  if (contains_any(label, {0x00E9, 0x00E8, 0x00EA, 0x00E7, 0x00E0})) return Language::kFrench;
  bool ascii_only = std::all_of(label.begin(), label.end(), unicode::is_ascii);
  return ascii_only ? Language::kEnglishAscii : Language::kOther;
}

}  // namespace

Language classify_language(const unicode::U32String& label) {
  using unicode::Script;
  bool has_han = false;
  bool has_kana = false;
  bool has_hangul = false;
  bool has_latin = false;
  Script other = Script::kCommon;

  for (const auto cp : label) {
    switch (unicode::script_of(cp)) {
      case Script::kHan: has_han = true; break;
      case Script::kHiragana:
      case Script::kKatakana: has_kana = true; break;
      case Script::kHangul: has_hangul = true; break;
      case Script::kLatin: has_latin = true; break;
      case Script::kCommon:
      case Script::kInherited: break;
      default: other = unicode::script_of(cp); break;
    }
  }

  if (has_kana) return Language::kJapanese;
  if (has_hangul) return Language::kKorean;
  if (has_han) return Language::kChinese;
  switch (other) {
    case Script::kCyrillic: return Language::kRussian;
    case Script::kArabic: return Language::kArabic;
    case Script::kThai: return Language::kThai;
    case Script::kGreek: return Language::kGreek;
    case Script::kHebrew: return Language::kHebrew;
    case Script::kDevanagari: return Language::kHindi;
    case Script::kTamil: return Language::kTamil;
    default: break;
  }
  if (has_latin || !label.empty()) return classify_latin(label);
  return Language::kOther;
}

}  // namespace sham::dns
