// Language identification for IDN labels (Table 7 of the paper used the
// langid.py module). This stand-in classifies by script composition plus
// characteristic-character evidence for Latin-script languages — the level
// of signal short domain labels actually carry.
#pragma once

#include <string_view>

#include "unicode/codepoint.hpp"

namespace sham::dns {

enum class Language : std::uint8_t {
  kChinese, kKorean, kJapanese, kGerman, kTurkish, kFrench, kSpanish,
  kPortuguese, kPolish, kCzech, kVietnamese, kNordic, kRussian, kArabic,
  kThai, kGreek, kHebrew, kHindi, kTamil, kEnglishAscii, kOther,
};

[[nodiscard]] std::string_view language_name(Language lang) noexcept;

/// Classify the most plausible language of a decoded IDN label.
[[nodiscard]] Language classify_language(const unicode::U32String& label);

}  // namespace sham::dns
