#include "serve/server.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "util/json.hpp"

namespace sham::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// The DetectRequest a ServeRequest stands for — the serve path never has
/// detection semantics of its own.
detect::DetectRequest to_detect_request(const ServeRequest& request) {
  detect::DetectRequest q;
  q.references = request.references;
  q.unicode_references = request.unicode_references;
  if (request.idns != nullptr) {
    q.idns = std::span<const detect::IdnEntry>{*request.idns};
  }
  q.strategy = request.strategy;
  q.join = request.join;
  return q;
}

}  // namespace

std::string_view status_name(ServeStatus status) noexcept {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kShed:
      return "shed";
    case ServeStatus::kExpired:
      return "expired";
    case ServeStatus::kInvalid:
      return "invalid";
    case ServeStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string_view overload_policy_name(OverloadPolicy policy) noexcept {
  switch (policy) {
    case OverloadPolicy::kRejectWhenFull:
      return "reject-when-full";
    case OverloadPolicy::kBlock:
      return "block";
  }
  return "unknown";
}

std::string ServerStats::to_json(int indent) const {
  util::JsonWriter w{indent};
  w.begin_object();
  w.field("schema_version", kSchemaVersion);
  w.field("submitted", submitted);
  w.field("admitted", admitted);
  w.field("shed", shed);
  w.field("served", served);
  w.field("expired", expired);
  w.field("invalid", invalid);
  w.field("shutdown", shutdown);
  w.field("batches", batches);
  w.field("coalesced_requests", coalesced_requests);
  w.field("coalescing_ratio", coalescing_ratio());
  w.field("queue_depth", static_cast<std::uint64_t>(queue_depth));
  w.field("peak_queue_depth", static_cast<std::uint64_t>(peak_queue_depth));
  w.field("detect_seconds", detect_seconds);
  w.field("queue_wait_seconds", queue_wait_seconds);
  w.field("running", running);
  w.field("paused", paused);
  w.key("slots").begin_array();
  for (const auto& slot : slots) w.raw(slot.to_json());
  w.end_array();
  w.end_object();
  return w.str();
}

/// One admitted request waiting for (or claimed by) a slot.
struct DetectionServer::Pending {
  std::uint64_t id = 0;
  ServeRequest request;
  std::shared_ptr<ResponseFuture::Channel> channel =
      std::make_shared<ResponseFuture::Channel>();
  Clock::time_point admitted_at{};
  Clock::time_point deadline = Clock::time_point::max();
  /// Coalescing key: zone-snapshot content fingerprint + the HomoglyphDb
  /// generation observed at admission.
  std::uint64_t zone_fingerprint = 0;
  std::uint64_t generation = 0;
};

DetectionServer::DetectionServer(const homoglyph::HomoglyphDb& db,
                                 detect::EngineOptions engine_options,
                                 ServerOptions options)
    : db_{&db}, engine_{db, engine_options}, options_{options} {
  options_.slots = std::max<std::size_t>(1, options_.slots);
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  options_.max_batch = std::max<std::size_t>(1, options_.max_batch);
  paused_ = options_.start_paused;
  slot_stats_.resize(options_.slots);
  for (std::size_t i = 0; i < options_.slots; ++i) slot_stats_[i].slot_id = i;
  slots_.reserve(options_.slots);
  for (std::size_t i = 0; i < options_.slots; ++i) {
    slots_.emplace_back([this, i] { slot_loop(i); });
  }
}

DetectionServer::~DetectionServer() { stop(); }

ResponseFuture DetectionServer::submit(ServeRequest request) {
  // Same boundary as Engine::detect: malformed requests throw here,
  // synchronously, before any future exists.
  detect::validate_request(to_detect_request(request));

  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  if (pending->request.idns != nullptr) {
    pending->zone_fingerprint = detect::label_set_fingerprint(
        std::span<const detect::IdnEntry>{*pending->request.idns});
  }
  pending->generation = db_->generation();
  ResponseFuture future{pending->channel};
  const auto timeout =
      pending->request.timeout.value_or(options_.default_timeout);

  std::unique_lock lock{mutex_};
  ++totals_.submitted;
  pending->id = next_id_++;
  const auto respond_terminal = [&](ServeStatus status, std::uint64_t& counter) {
    ++counter;
    ServeResponse response;
    response.request_id = pending->id;
    response.status = status;
    pending->channel->set(std::move(response));
  };
  if (stopping_) {
    respond_terminal(ServeStatus::kShutdown, totals_.shutdown);
    return future;
  }
  if (queue_.size() >= options_.queue_capacity) {
    if (options_.overload == OverloadPolicy::kRejectWhenFull) {
      respond_terminal(ServeStatus::kShed, totals_.shed);
      return future;
    }
    space_cv_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) {
      respond_terminal(ServeStatus::kShutdown, totals_.shutdown);
      return future;
    }
  }
  pending->admitted_at = Clock::now();
  if (timeout.count() > 0) pending->deadline = pending->admitted_at + timeout;
  ++totals_.admitted;
  queue_.push_back(std::move(pending));
  totals_.peak_queue_depth = std::max(totals_.peak_queue_depth, queue_.size());
  lock.unlock();
  work_cv_.notify_one();
  return future;
}

ServeResponse DetectionServer::detect_sync(ServeRequest request) {
  return submit(std::move(request)).get();
}

void DetectionServer::pause() {
  {
    std::lock_guard lock{mutex_};
    paused_ = true;
  }
  work_cv_.notify_all();
}

void DetectionServer::resume() {
  {
    std::lock_guard lock{mutex_};
    paused_ = false;
  }
  work_cv_.notify_all();
}

void DetectionServer::stop() {
  std::vector<std::unique_ptr<Pending>> orphans;
  {
    std::lock_guard lock{mutex_};
    if (!stopping_) {
      stopping_ = true;
      while (!queue_.empty()) {
        orphans.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      totals_.shutdown += orphans.size();
    }
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& orphan : orphans) {
    ServeResponse response;
    response.request_id = orphan->id;
    response.status = ServeStatus::kShutdown;
    orphan->channel->set(std::move(response));
  }
  for (auto& slot : slots_) {
    if (slot.joinable()) slot.join();
  }
}

std::vector<std::unique_ptr<DetectionServer::Pending>>
DetectionServer::claim_batch_locked() {
  std::vector<std::unique_ptr<Pending>> batch;
  if (queue_.empty()) return batch;
  // Head: the oldest kHigh request if any, else the oldest overall.
  std::size_t head = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i]->request.priority == Priority::kHigh) {
      head = i;
      break;
    }
  }
  batch.push_back(std::move(queue_[head]));
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(head));
  // Same-snapshot followers, in FIFO order, up to the batch cap.
  const auto fingerprint = batch.front()->zone_fingerprint;
  const auto generation = batch.front()->generation;
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < options_.max_batch;) {
    if ((*it)->zone_fingerprint == fingerprint && (*it)->generation == generation) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

void DetectionServer::slot_loop(std::size_t slot_id) {
  auto& slot = slot_stats_[slot_id];
  for (;;) {
    std::unique_lock lock{mutex_};
    slot.state = SlotState::kIdle;
    work_cv_.wait(lock, [this] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (stopping_) return;
    slot.state = SlotState::kQueued;
    auto batch = claim_batch_locked();
    const auto pickup = Clock::now();
    const std::uint64_t dispatch_base = dispatch_counter_;
    dispatch_counter_ += batch.size();
    lock.unlock();
    space_cv_.notify_all();  // freed queue_capacity - batch.size() slots

    std::size_t live = 0;
    for (const auto& pending : batch) {
      if (pickup <= pending->deadline) ++live;
    }
    {
      std::lock_guard state_lock{mutex_};
      slot.state = SlotState::kProcessing;
    }
    std::uint64_t served = 0;
    std::uint64_t expired = 0;
    std::uint64_t invalid = 0;
    double detect_seconds = 0.0;
    double queue_wait = 0.0;
    std::vector<ServeResponse> responses;
    responses.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto& pending = *batch[i];
      ServeResponse response;
      response.request_id = pending.id;
      response.slot_id = slot_id;
      response.dispatch_order = dispatch_base + i + 1;
      response.queue_seconds = seconds_between(pending.admitted_at, pickup);
      queue_wait += response.queue_seconds;
      if (pickup > pending.deadline) {
        response.status = ServeStatus::kExpired;
        ++expired;
      } else {
        try {
          const auto start = Clock::now();
          auto result = engine_.detect(to_detect_request(pending.request));
          detect_seconds += seconds_between(start, Clock::now());
          response.status = ServeStatus::kOk;
          response.matches = std::move(result.matches);
          response.stats = result.stats;
          response.batch_size = live;
          ++served;
        } catch (const std::invalid_argument& error) {
          // Defensive: submit() already validated, but a request model
          // change must degrade to a typed error, not a dead future.
          response.status = ServeStatus::kInvalid;
          response.error = error.what();
          ++invalid;
        }
      }
      responses.push_back(std::move(response));
    }

    // Merge counters BEFORE delivering the responses: a caller observing
    // its future resolved must see this batch reflected in stats().
    lock.lock();
    slot.state = SlotState::kDone;
    slot.served += served;
    slot.expired += expired;
    slot.invalid += invalid;
    if (served + invalid > 0) ++slot.batches;
    slot.busy_seconds += seconds_between(pickup, Clock::now());
    slot.detect_seconds += detect_seconds;
    slot.queue_wait_seconds += queue_wait;
    totals_.served += served;
    totals_.expired += expired;
    totals_.invalid += invalid;
    if (served + invalid > 0) ++totals_.batches;
    if (live > 1) totals_.coalesced_requests += served;
    totals_.detect_seconds += detect_seconds;
    totals_.queue_wait_seconds += queue_wait;
    lock.unlock();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i]->channel->set(std::move(responses[i]));
    }
  }
}

ServerStats DetectionServer::stats() const {
  std::lock_guard lock{mutex_};
  ServerStats out = totals_;
  out.queue_depth = queue_.size();
  out.running = !stopping_;
  out.paused = paused_;
  out.slots = slot_stats_;
  return out;
}

}  // namespace sham::serve
