// Request slots: the fixed pool of execution lanes the DetectionServer
// schedules admitted requests onto (one OS thread per slot).
//
// Lifecycle of a slot, observable through SlotStats::state:
//
//   kIdle -------- no work assigned; the slot thread is parked on the
//        |         admission queue's condition variable.
//   kQueued ------ the slot has claimed a batch from the admission queue
//        |         but has not started the engine yet (the window is
//        |         short: deadline checks and batch bookkeeping).
//   kProcessing -- the engine is running this slot's batch.
//        |
//   kDone -------- the batch's promises are fulfilled; transient state
//                  before the slot re-parks as kIdle (or exits on stop).
//
// Slots never share partial work: a batch is claimed atomically under the
// queue lock by exactly one slot, processed to completion, and every
// request in it is answered before the slot returns to kIdle. Stopping
// the server lets in-flight batches finish (kProcessing is never
// cancelled) and resolves still-queued requests as kShutdown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sham::serve {

enum class SlotState : std::uint8_t {
  kIdle = 0,
  kQueued,
  kProcessing,
  kDone,
};

[[nodiscard]] std::string_view slot_state_name(SlotState state) noexcept;

/// Per-slot counters, aggregated by the slot thread itself (no sharing)
/// and snapshotted under the server's stats lock.
struct SlotStats {
  /// Serialization schema of to_json(); bump on rename/removal/meaning
  /// change (additions are backward-compatible).
  static constexpr std::uint32_t kSchemaVersion = 1;

  std::size_t slot_id = 0;
  SlotState state = SlotState::kIdle;
  std::uint64_t served = 0;     // requests answered kOk
  std::uint64_t expired = 0;    // requests answered kExpired at pickup
  std::uint64_t invalid = 0;    // requests answered kInvalid (defensive path)
  std::uint64_t batches = 0;    // coalesced batches processed
  double busy_seconds = 0.0;    // wall clock spent in kQueued+kProcessing
  double detect_seconds = 0.0;  // wall clock inside Engine::detect
  double queue_wait_seconds = 0.0;  // summed queue wait of requests served

  /// One JSON object over every field above plus "schema_version" and the
  /// state as its name. `indent` as in util::JsonWriter (0 = compact).
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

}  // namespace sham::serve
