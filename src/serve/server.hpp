// DetectionServer: a long-lived service that owns one shared
// detect::Engine and schedules concurrent ServeRequests through a fixed
// pool of request slots (serve/slot.hpp) fed by a bounded admission queue.
//
// Scheduling model:
//   - submit() validates the request (detect::validate_request — the same
//     std::invalid_argument surface as calling the engine directly),
//     assigns an id, and enqueues it. When the queue is at capacity the
//     OverloadPolicy decides: kRejectWhenFull answers kShed immediately
//     (load shedding), kBlock parks the submitter until space frees.
//   - Each slot thread claims work from the queue: the oldest kHigh
//     request if any, else the oldest overall, plus — same-snapshot
//     batching — every queued request whose coalescing key matches, up to
//     ServerOptions::max_batch. The key is the zone snapshot's content
//     fingerprint (detect::label_set_fingerprint) + the HomoglyphDb
//     generation at admission: requests detecting against the same IDN
//     set share one index build instead of thrashing the engine's
//     last-snapshot index cache across interleaved snapshots.
//   - Deadlines (ServeRequest::timeout, default
//     ServerOptions::default_timeout) are enforced at slot pickup:
//     a request whose deadline passed while queued is answered kExpired
//     without running the engine.
//   - stop() (also run by the destructor) stops admission, answers every
//     still-queued request kShutdown, lets in-flight batches finish, and
//     joins the slot threads — no request's future is ever abandoned.
//
// Results for admitted requests are byte-identical to calling
// Engine::detect directly with the equivalent DetectRequest: the server
// adds scheduling, never changes detection semantics.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "detect/engine.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "serve/api.hpp"
#include "serve/slot.hpp"

namespace sham::serve {

/// Deferred delivery of one ServeResponse (what submit() returns).
///
/// Deliberately not std::future: libstdc++'s future synchronizes the
/// producer and consumer through __gthread_once, which ThreadSanitizer
/// cannot see (GCC PR 66146) and reports as a false-positive data race
/// all over the serve test suite. A plain mutex + condition_variable
/// channel gives TSan-visible happens-before edges and exactly the three
/// operations the API needs: get(), ready(), wait_for().
class ResponseFuture {
 public:
  /// Shared single-producer/single-consumer state. The server keeps one
  /// reference until it fulfills the response; the caller keeps the other.
  struct Channel {
    std::mutex mutex;
    std::condition_variable cv;
    std::optional<ServeResponse> value;

    void set(ServeResponse&& response) {
      {
        std::lock_guard lock{mutex};
        value = std::move(response);
      }
      cv.notify_all();
    }
  };

  explicit ResponseFuture(std::shared_ptr<Channel> channel)
      : channel_{std::move(channel)} {}

  /// Block until the response is delivered and move it out (call once).
  [[nodiscard]] ServeResponse get() {
    std::unique_lock lock{channel_->mutex};
    channel_->cv.wait(lock, [&] { return channel_->value.has_value(); });
    return std::move(*channel_->value);
  }

  /// True once the response has been delivered (get() will not block).
  [[nodiscard]] bool ready() const {
    std::lock_guard lock{channel_->mutex};
    return channel_->value.has_value();
  }

  /// Wait up to `duration`; true iff the response arrived in time.
  template <class Rep, class Period>
  [[nodiscard]] bool wait_for(std::chrono::duration<Rep, Period> duration) {
    std::unique_lock lock{channel_->mutex};
    return channel_->cv.wait_for(lock, duration,
                                 [&] { return channel_->value.has_value(); });
  }

 private:
  std::shared_ptr<Channel> channel_;
};

enum class OverloadPolicy : std::uint8_t {
  kRejectWhenFull,  // shed: answer kShed when the queue is at capacity
  kBlock,           // backpressure: block submit() until space frees
};

[[nodiscard]] std::string_view overload_policy_name(OverloadPolicy policy) noexcept;

struct ServerOptions {
  /// Request slots = concurrent engine runs (one thread per slot).
  std::size_t slots = 2;
  /// Bounded admission queue capacity (requests waiting for a slot).
  std::size_t queue_capacity = 64;
  OverloadPolicy overload = OverloadPolicy::kRejectWhenFull;
  /// Same-snapshot batching cap: at most this many queued requests with
  /// one coalescing key are claimed per slot pickup. 1 disables batching.
  std::size_t max_batch = 16;
  /// Queue deadline applied when ServeRequest::timeout is unset;
  /// zero = queued requests never expire.
  std::chrono::milliseconds default_timeout{0};
  /// Start with the slots paused (admission still open): deterministic
  /// tests fill the queue, then resume(). Production servers start live.
  bool start_paused = false;
};

/// Server-wide counters plus a snapshot of every slot's SlotStats.
struct ServerStats {
  /// Serialization schema of to_json(); bump on rename/removal/meaning
  /// change (additions are backward-compatible).
  static constexpr std::uint32_t kSchemaVersion = 1;

  std::uint64_t submitted = 0;  // submit() calls that passed validation
  std::uint64_t admitted = 0;   // entered the queue
  std::uint64_t shed = 0;       // answered kShed at admission
  std::uint64_t served = 0;     // answered kOk
  std::uint64_t expired = 0;    // answered kExpired
  std::uint64_t invalid = 0;    // answered kInvalid
  std::uint64_t shutdown = 0;   // answered kShutdown by stop()
  std::uint64_t batches = 0;    // coalesced batches processed
  /// Requests that shared their batch with at least one other request.
  std::uint64_t coalesced_requests = 0;
  std::size_t queue_depth = 0;       // requests queued right now
  std::size_t peak_queue_depth = 0;  // high-water mark since construction
  double detect_seconds = 0.0;      // wall clock inside Engine::detect (sum)
  double queue_wait_seconds = 0.0;  // summed queue wait of picked requests
  bool running = false;
  bool paused = false;
  std::vector<SlotStats> slots;

  /// Requests served per engine batch; > 1.0 means same-snapshot batching
  /// is amortizing index work across requests.
  [[nodiscard]] double coalescing_ratio() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(served) / static_cast<double>(batches);
  }

  /// One JSON object over every field above (slots as an array of
  /// SlotStats::to_json objects). `indent` as in util::JsonWriter.
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

class DetectionServer {
 public:
  /// The database must outlive the server. The engine is constructed
  /// here and owned for the server's lifetime; engine_options as in
  /// detect::Engine (caching on by default — batching relies on it).
  explicit DetectionServer(const homoglyph::HomoglyphDb& db,
                           detect::EngineOptions engine_options = {},
                           ServerOptions options = {});
  ~DetectionServer();  // stop()

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  /// Admit a request. Throws std::invalid_argument on malformed input
  /// (exactly detect::validate_request's rules) — the future is only
  /// created for well-formed requests and is always eventually fulfilled
  /// (kOk, kShed, kExpired, kInvalid, or kShutdown).
  [[nodiscard]] ResponseFuture submit(ServeRequest request);

  /// submit() + wait. Convenience for callers without their own pipeline.
  [[nodiscard]] ServeResponse detect_sync(ServeRequest request);

  /// Halt/resume slot pickup. Admission stays open while paused (the
  /// queue fills, sheds, or blocks per OverloadPolicy).
  void pause();
  void resume();

  /// Stop admission, answer queued requests kShutdown, finish in-flight
  /// batches, join slot threads. Idempotent; run by the destructor.
  void stop();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const detect::Engine& engine() const noexcept { return engine_; }
  [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }

 private:
  struct Pending;

  void slot_loop(std::size_t slot_id);
  /// Claim the next batch under mutex_: priority head + same-key
  /// followers up to max_batch. Empty only when the queue is.
  [[nodiscard]] std::vector<std::unique_ptr<Pending>> claim_batch_locked();

  const homoglyph::HomoglyphDb* db_;
  detect::Engine engine_;
  ServerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // slots: work available / stop / resume
  std::condition_variable space_cv_;  // kBlock submitters: queue has space
  std::deque<std::unique_ptr<Pending>> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatch_counter_ = 0;
  ServerStats totals_;  // scalar counters only; slots tracked separately
  std::vector<SlotStats> slot_stats_;
  std::vector<std::thread> slots_;
};

}  // namespace sham::serve
