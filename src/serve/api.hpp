// Versioned request/response API of the resident detection service.
//
// A ServeRequest is one list-vs-list detection job: it owns its reference
// labels (small, per-client) and shares the IDN zone snapshot through a
// shared_ptr (large, long-lived, common to many requests in flight). The
// server answers with a ServeResponse carrying the match list, the full
// DetectionStats of the engine run that produced it, and scheduling
// metadata (queue wait, slot, coalesced-batch size).
//
// kApiVersion is the wire-compatibility number of this pair of structs:
// bump it when a field is renamed, removed, or changes meaning. Responses
// echo the version so clients built against a different revision can
// detect the skew instead of misreading fields.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "detect/detector.hpp"
#include "detect/engine.hpp"
#include "unicode/codepoint.hpp"

namespace sham::serve {

inline constexpr std::uint32_t kApiVersion = 1;

/// Immutable zone snapshot shared by every request detecting against the
/// same registered-IDN set. The server fingerprints the *contents* (see
/// detect::label_set_fingerprint), so distinct buffers with equal labels
/// coalesce all the same — sharing the pointer just avoids copies.
using ZoneSnapshot = std::shared_ptr<const std::vector<detect::IdnEntry>>;

enum class Priority : std::uint8_t {
  kNormal = 0,
  kHigh = 1,  // jumps the FIFO order at slot-pickup time, never sheds later
};

/// Terminal state of a request, reported in ServeResponse::status.
enum class ServeStatus : std::uint8_t {
  kOk,        // detection ran; matches/stats are valid
  kShed,      // rejected at admission (queue full, OverloadPolicy::kRejectWhenFull)
  kExpired,   // deadline passed while queued; the engine never ran it
  kInvalid,   // the request failed detect::validate_request inside the server
  kShutdown,  // server stopped before a slot picked the request up
};

[[nodiscard]] std::string_view status_name(ServeStatus status) noexcept;

struct ServeRequest {
  std::uint32_t api_version = kApiVersion;
  /// Exactly one of the two reference spans may be non-empty, with the
  /// same rules as detect::DetectRequest (validated at admission).
  std::vector<std::string> references;
  std::vector<unicode::U32String> unicode_references;
  ZoneSnapshot idns;  // null behaves as an empty zone
  Priority priority = Priority::kNormal;
  /// Per-request engine overrides (same semantics as DetectRequest).
  std::optional<detect::Strategy> strategy;
  std::optional<detect::SkeletonJoin> join;
  /// Max time the request may sit in the admission queue before it is
  /// answered kExpired instead of detected. Unset = the server default;
  /// zero = no deadline.
  std::optional<std::chrono::milliseconds> timeout;
};

struct ServeResponse {
  std::uint32_t api_version = kApiVersion;
  std::uint64_t request_id = 0;  // server-assigned, unique per server
  ServeStatus status = ServeStatus::kOk;
  std::string error;  // kInvalid: the std::invalid_argument message

  std::vector<detect::Match> matches;   // kOk only; DetectRequest ordering
  detect::DetectionStats stats;         // the engine run that served this

  // Scheduling metadata (kOk only unless noted).
  std::size_t slot_id = 0;       // slot that processed the request
  std::size_t batch_size = 1;    // size of the coalesced batch it rode in
  std::uint64_t dispatch_order = 0;  // global pickup sequence (1-based)
  double queue_seconds = 0.0;    // admission -> slot pickup (all statuses)
};

}  // namespace sham::serve
