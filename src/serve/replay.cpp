#include "serve/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace sham::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Nearest-rank percentile over an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

ReplayWorkload make_replay_workload(const homoglyph::HomoglyphDb& db,
                                    std::size_t reference_lists,
                                    std::size_t refs_per_list, std::size_t zones,
                                    std::size_t idns_per_zone,
                                    std::uint64_t seed) {
  util::Rng rng{seed};
  ReplayWorkload w;
  w.reference_lists.resize(reference_lists);
  for (auto& list : w.reference_lists) {
    for (std::size_t i = 0; i < refs_per_list; ++i) {
      std::string name;
      const std::size_t n = 3 + rng.below(8);
      for (std::size_t j = 0; j < n; ++j) {
        name += static_cast<char>('a' + rng.below(26));
      }
      list.push_back(name);
    }
  }
  for (std::size_t z = 0; z < zones; ++z) {
    auto zone = std::make_shared<std::vector<detect::IdnEntry>>();
    for (std::size_t i = 0; i < idns_per_zone; ++i) {
      const auto& list = w.reference_lists[rng.below(w.reference_lists.size())];
      const auto& ref = list[rng.below(list.size())];
      unicode::U32String label;
      for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
      const std::size_t muts = 1 + rng.below(2);
      for (std::size_t m = 0; m < muts; ++m) {
        const auto pos = rng.below(label.size());
        const auto subs = db.homoglyphs_of(label[pos]);
        // Half genuine homoglyph substitutions, half junk characters.
        label[pos] = (!subs.empty() && rng.below(2) == 0)
                         ? subs[rng.below(subs.size())]
                         : static_cast<unicode::CodePoint>(0x3042 + rng.below(64));
      }
      zone->push_back({"", label});
    }
    w.zones.push_back(std::move(zone));
  }
  return w;
}

std::string ReplayReport::to_json(int indent) const {
  util::JsonWriter w{indent};
  w.begin_object();
  w.field("schema_version", kSchemaVersion);
  w.field("clients", static_cast<std::uint64_t>(clients));
  w.field("sent", sent);
  w.field("ok", ok);
  w.field("shed", shed);
  w.field("expired", expired);
  w.field("other", other);
  w.field("wall_seconds", wall_seconds);
  w.field("throughput_rps", throughput_rps);
  w.field("p50_ms", p50_ms);
  w.field("p95_ms", p95_ms);
  w.field("p99_ms", p99_ms);
  w.field("max_ms", max_ms);
  w.field("shed_rate", shed_rate);
  w.field("coalescing_ratio", coalescing_ratio);
  w.field("verified", verified);
  w.field("mismatches", mismatches);
  w.end_object();
  return w.str();
}

ReplayReport run_replay(DetectionServer& server, const homoglyph::HomoglyphDb& db,
                        const ReplayWorkload& workload, const ReplayConfig& config) {
  ReplayReport report;
  report.clients = config.clients;

  // Ground truth per (reference list, zone) pair: serial, cache-free —
  // the same baseline the engine test suite compares everything against.
  std::vector<std::vector<std::vector<detect::Match>>> truth;
  if (config.verify) {
    const detect::Engine serial{
        db, {.strategy = detect::Strategy::kSerial, .threads = 1, .cache = false}};
    truth.resize(workload.reference_lists.size());
    for (std::size_t r = 0; r < workload.reference_lists.size(); ++r) {
      for (const auto& zone : workload.zones) {
        truth[r].push_back(
            serial
                .detect({.references = workload.reference_lists[r],
                         .idns = std::span<const detect::IdnEntry>{*zone}})
                .matches);
      }
    }
  }

  const auto before = server.stats();
  std::mutex merge_mutex;
  std::vector<double> latencies_ms;  // kOk only
  const auto wall_start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(config.clients);
  for (std::size_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng{config.seed * 1000003ULL + c};
      std::vector<double> local_ms;
      std::uint64_t ok = 0, shed = 0, expired = 0, other = 0, mismatches = 0;
      for (std::size_t i = 0; i < config.requests_per_client; ++i) {
        const auto r = rng.below(workload.reference_lists.size());
        const auto z = rng.below(workload.zones.size());
        ServeRequest request;
        request.references = workload.reference_lists[r];
        request.idns = workload.zones[z];
        if (config.high_priority_every != 0 &&
            (i + 1) % config.high_priority_every == 0) {
          request.priority = Priority::kHigh;
        }
        if (config.timeout_ms != 0) {
          request.timeout = std::chrono::milliseconds{config.timeout_ms};
        }
        const auto start = Clock::now();
        const auto response = server.detect_sync(std::move(request));
        const auto elapsed =
            std::chrono::duration<double, std::milli>(Clock::now() - start).count();
        switch (response.status) {
          case ServeStatus::kOk:
            ++ok;
            local_ms.push_back(elapsed);
            if (config.verify && response.matches != truth[r][z]) ++mismatches;
            break;
          case ServeStatus::kShed:
            ++shed;
            break;
          case ServeStatus::kExpired:
            ++expired;
            break;
          default:
            ++other;
            break;
        }
      }
      std::lock_guard lock{merge_mutex};
      report.ok += ok;
      report.shed += shed;
      report.expired += expired;
      report.other += other;
      report.mismatches += mismatches;
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(), local_ms.end());
    });
  }
  for (auto& client : clients) client.join();
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  report.sent = report.ok + report.shed + report.expired + report.other;
  report.verified = report.mismatches == 0;
  report.shed_rate = report.sent == 0
                         ? 0.0
                         : static_cast<double>(report.shed) /
                               static_cast<double>(report.sent);
  report.throughput_rps = report.wall_seconds <= 0.0
                              ? 0.0
                              : static_cast<double>(report.ok) / report.wall_seconds;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  report.p50_ms = percentile(latencies_ms, 50.0);
  report.p95_ms = percentile(latencies_ms, 95.0);
  report.p99_ms = percentile(latencies_ms, 99.0);
  report.max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  // Coalescing over this replay only (the server may have prior traffic).
  const auto after = server.stats();
  const auto served = after.served - before.served;
  const auto batches = after.batches - before.batches;
  report.coalescing_ratio =
      batches == 0 ? 0.0
                   : static_cast<double>(served) / static_cast<double>(batches);
  return report;
}

}  // namespace sham::serve
