// Traffic replay against a DetectionServer: N closed-loop client threads
// submit a deterministic mixed workload (rotating reference lists ×
// alternating zone snapshots — cold builds, warm index hits, and memo
// hits all occur) and the driver reports latency percentiles,
// throughput, shed rate, and the server's coalescing ratio.
//
// Verification mode recomputes every (reference list, zone) ground truth
// with a cache-free serial engine and checks each kOk response is
// byte-identical — the serve path must never change detection output.
//
// Shared by bench/serve_replay.cpp (BENCH_serve.json) and the
// `shamfinder_cli replay` command.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "homoglyph/homoglyph_db.hpp"
#include "serve/server.hpp"

namespace sham::serve {

struct ReplayWorkload {
  std::vector<std::vector<std::string>> reference_lists;
  std::vector<ZoneSnapshot> zones;
};

/// Deterministic synthetic workload: reference lists of random LDH names,
/// zone snapshots whose labels mutate those names with genuine homoglyphs
/// (matches occur) and junk (rejections occur). Same seed, same workload.
[[nodiscard]] ReplayWorkload make_replay_workload(
    const homoglyph::HomoglyphDb& db, std::size_t reference_lists,
    std::size_t refs_per_list, std::size_t zones, std::size_t idns_per_zone,
    std::uint64_t seed);

struct ReplayConfig {
  std::size_t clients = 4;
  std::size_t requests_per_client = 64;
  std::uint64_t seed = 20260808;
  /// Every Nth request is submitted kHigh (0 disables priority traffic).
  std::size_t high_priority_every = 8;
  /// Per-request queue deadline in milliseconds (0 = none).
  std::uint64_t timeout_ms = 0;
  /// Check kOk responses against serial cache-free ground truth.
  bool verify = true;
};

struct ReplayReport {
  /// Serialization schema of to_json(); bump on rename/removal/meaning
  /// change (additions are backward-compatible).
  static constexpr std::uint32_t kSchemaVersion = 1;

  std::size_t clients = 0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t other = 0;  // kInvalid/kShutdown — 0 in a healthy replay
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  // kOk responses per wall-clock second
  double p50_ms = 0.0;          // latency of kOk requests, submit -> response
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double shed_rate = 0.0;           // shed / sent
  double coalescing_ratio = 0.0;    // server-reported (served per batch)
  bool verified = true;             // false when any kOk response mismatched
  std::uint64_t mismatches = 0;

  /// One JSON object over every field above plus "schema_version".
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// Drive `server` with the workload under `config`. `db` must be the
/// database the server was built over (used for ground-truth verification).
[[nodiscard]] ReplayReport run_replay(DetectionServer& server,
                                      const homoglyph::HomoglyphDb& db,
                                      const ReplayWorkload& workload,
                                      const ReplayConfig& config);

}  // namespace sham::serve
