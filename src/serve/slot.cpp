#include "serve/slot.hpp"

#include "util/json.hpp"

namespace sham::serve {

std::string_view slot_state_name(SlotState state) noexcept {
  switch (state) {
    case SlotState::kIdle:
      return "idle";
    case SlotState::kQueued:
      return "queued";
    case SlotState::kProcessing:
      return "processing";
    case SlotState::kDone:
      return "done";
  }
  return "unknown";
}

std::string SlotStats::to_json(int indent) const {
  util::JsonWriter w{indent};
  w.begin_object();
  w.field("schema_version", kSchemaVersion);
  w.field("slot_id", static_cast<std::uint64_t>(slot_id));
  w.field("state", slot_state_name(state));
  w.field("served", served);
  w.field("expired", expired);
  w.field("invalid", invalid);
  w.field("batches", batches);
  w.field("busy_seconds", busy_seconds);
  w.field("detect_seconds", detect_seconds);
  w.field("queue_wait_seconds", queue_wait_seconds);
  w.end_object();
  return w.str();
}

}  // namespace sham::serve
