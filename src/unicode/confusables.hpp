// The "UC" homoglyph database: Unicode UTS #39 confusable mappings
// (confusables.txt). Each entry maps a source character to its prototype
// skeleton (one or more characters); two strings are confusable when their
// skeletons are equal.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "unicode/codepoint.hpp"

namespace sham::unicode {

struct ConfusableEntry {
  CodePoint source = 0;
  U32String skeleton;  // prototype sequence (usually one char)
};

/// UTS #39 confusables database.
class ConfusablesDb {
 public:
  /// The embedded curated database (see data/confusables_data.inc).
  static const ConfusablesDb& embedded();

  /// Parse confusables.txt content ("XXXX ; YYYY ZZZZ ; MA # comment").
  /// Unparseable lines throw std::invalid_argument with a line number.
  static ConfusablesDb parse(std::string_view text);

  ConfusablesDb() = default;
  explicit ConfusablesDb(std::vector<ConfusableEntry> entries);

  /// Prototype skeleton of one code point (identity if unmapped).
  [[nodiscard]] U32String skeleton_of(CodePoint cp) const;

  /// UTS #39 skeleton(X): map every character, to a fixed point.
  [[nodiscard]] U32String skeleton(const U32String& text) const;

  /// True if the two code points share a single-character skeleton class.
  [[nodiscard]] bool confusable(CodePoint a, CodePoint b) const;

  /// All (source, prototype) pairs whose skeleton is a single character.
  /// These are the "homoglyph pairs" used by the detection DB.
  [[nodiscard]] std::vector<std::pair<CodePoint, CodePoint>> single_char_pairs() const;

  /// Every code point mentioned (sources and prototype members).
  [[nodiscard]] std::vector<CodePoint> all_characters() const;

  [[nodiscard]] std::size_t entry_count() const noexcept { return map_.size(); }

  [[nodiscard]] bool contains(CodePoint cp) const { return map_.contains(cp); }

 private:
  std::unordered_map<CodePoint, U32String> map_;
};

}  // namespace sham::unicode
