// Coarse script classification. Browsers' IDN display policies and our
// language identifier (Table 7) both reason about scripts, not blocks.
#pragma once

#include <string_view>
#include <vector>

#include "unicode/codepoint.hpp"

namespace sham::unicode {

enum class Script : std::uint8_t {
  kCommon, kInherited, kLatin, kGreek, kCyrillic, kArmenian, kHebrew, kArabic,
  kDevanagari, kBengali, kGurmukhi, kGujarati, kOriya, kTamil, kTelugu,
  kKannada, kMalayalam, kSinhala, kThai, kLao, kTibetan, kMyanmar, kGeorgian,
  kHangul, kEthiopic, kCherokee, kCanadianAboriginal, kKhmer, kMongolian,
  kHan, kHiragana, kKatakana, kBopomofo, kYi, kLisu, kVai, kCham, kWarangCiti,
  kUnknown,
};

[[nodiscard]] Script script_of(CodePoint cp) noexcept;
[[nodiscard]] std::string_view script_name(Script script) noexcept;

/// Distinct non-Common/Inherited scripts appearing in `text`.
[[nodiscard]] std::vector<Script> scripts_in(const U32String& text);

/// True if `text` mixes two or more real scripts — the condition modern
/// browsers use to force Punycode display (Section 2.2 of the paper).
[[nodiscard]] bool is_mixed_script(const U32String& text);

}  // namespace sham::unicode
