#include "unicode/idna_properties.hpp"

#include <algorithm>
#include <iterator>

#include "unicode/category.hpp"

namespace sham::unicode {

namespace {

struct Range {
  std::uint32_t first;
  std::uint32_t last;
};

// RFC 5892 rule B ("Unstable"): cp != NFKC(casefold(NFKC(cp))).
// Generated from Unicode 14.0 (tools/gen_unicode_tables.py).
constexpr Range kUnstableRanges[] = {
#include "unicode/data/unstable_ranges.inc"
};

bool in_ranges(CodePoint cp, const Range* begin, const Range* end) noexcept {
  const auto* it = std::lower_bound(
      begin, end, cp, [](const Range& r, CodePoint value) { return r.last < value; });
  return it != end && cp >= it->first;
}

bool is_unstable(CodePoint cp) noexcept {
  return in_ranges(cp, std::begin(kUnstableRanges), std::end(kUnstableRanges));
}

// RFC 5892 Section 2.6 "Exceptions".
bool exception_lookup(CodePoint cp, IdnaProperty& out) noexcept {
  switch (cp) {
    // PVALID exceptions.
    case 0x00DF:  // LATIN SMALL LETTER SHARP S
    case 0x03C2:  // GREEK SMALL LETTER FINAL SIGMA
    case 0x06FD:  // ARABIC SIGN SINDHI AMPERSAND
    case 0x06FE:  // ARABIC SIGN SINDHI POSTPOSITION MEN
    case 0x0F0B:  // TIBETAN MARK INTERSYLLABIC TSHEG
    case 0x3007:  // IDEOGRAPHIC NUMBER ZERO
      out = IdnaProperty::kPvalid;
      return true;
    // CONTEXTO exceptions.
    case 0x00B7:  // MIDDLE DOT
    case 0x0375:  // GREEK LOWER NUMERAL SIGN
    case 0x05F3:  // HEBREW PUNCTUATION GERESH
    case 0x05F4:  // HEBREW PUNCTUATION GERSHAYIM
    case 0x30FB:  // KATAKANA MIDDLE DOT
      out = IdnaProperty::kContextO;
      return true;
    // DISALLOWED exceptions.
    case 0x0640:  // ARABIC TATWEEL
    case 0x07FA:  // NKO LAJANYALAN
    case 0x302E:  // HANGUL SINGLE DOT TONE MARK
    case 0x302F:  // HANGUL DOUBLE DOT TONE MARK
    case 0x3031:  // VERTICAL KANA REPEAT MARK
    case 0x3032:
    case 0x3033:
    case 0x3034:
    case 0x3035:
    case 0x303B:  // VERTICAL IDEOGRAPHIC ITERATION MARK
      out = IdnaProperty::kDisallowed;
      return true;
    default:
      break;
  }
  // Arabic-Indic and extended Arabic-Indic digits: CONTEXTO.
  if ((cp >= 0x0660 && cp <= 0x0669) || (cp >= 0x06F0 && cp <= 0x06F9)) {
    out = IdnaProperty::kContextO;
    return true;
  }
  return false;
}

// Rule I: conjoining Old Hangul Jamo are DISALLOWED (modern precomposed
// Hangul syllables remain PVALID).
bool is_old_hangul_jamo(CodePoint cp) noexcept {
  return (cp >= 0x1100 && cp <= 0x11FF) || (cp >= 0xA960 && cp <= 0xA97F) ||
         (cp >= 0xD7B0 && cp <= 0xD7FF);
}

// Rule L ("IgnorableBlocks"): blocks intended for symbol annotation.
bool in_ignorable_block(CodePoint cp) noexcept {
  return (cp >= 0x20D0 && cp <= 0x20FF) ||      // Combining Marks for Symbols
         (cp >= 0x1D100 && cp <= 0x1D1FF) ||    // Musical Symbols
         (cp >= 0x1D200 && cp <= 0x1D24F);      // Ancient Greek Musical Notation
}

// Rule K ("IgnorableProperties"): default-ignorable, white space,
// noncharacter. We approximate default-ignorable with Cf plus the
// variation-selector and fill blocks; whitespace with the Z categories plus
// the ASCII controls that are White_Space.
bool has_ignorable_property(CodePoint cp, GeneralCategory cat) noexcept {
  if (is_noncharacter(cp)) return true;
  if (cat == GeneralCategory::kZs || cat == GeneralCategory::kZl ||
      cat == GeneralCategory::kZp) {
    return true;
  }
  if (cat == GeneralCategory::kCf) return true;
  if (cp >= 0xFE00 && cp <= 0xFE0F) return true;    // variation selectors
  if (cp == 0x3164 || cp == 0xFFA0) return true;    // Hangul fillers
  return false;
}

}  // namespace

IdnaProperty idna_property(CodePoint cp) noexcept {
  if (!is_scalar_value(cp)) return IdnaProperty::kDisallowed;

  IdnaProperty exception{};
  if (exception_lookup(cp, exception)) return exception;  // rule F

  const GeneralCategory cat = general_category(cp);
  if (cat == GeneralCategory::kCn) return IdnaProperty::kUnassigned;  // rule J

  // Rule: LDH (lowercase ASCII letters, digits, hyphen) is PVALID.
  if (cp == '-' || (cp >= '0' && cp <= '9') || (cp >= 'a' && cp <= 'z')) {
    return IdnaProperty::kPvalid;
  }

  if (cp == 0x200C || cp == 0x200D) return IdnaProperty::kContextJ;  // rule H

  if (is_unstable(cp)) return IdnaProperty::kDisallowed;               // rule B
  if (has_ignorable_property(cp, cat)) return IdnaProperty::kDisallowed;  // rule K
  if (in_ignorable_block(cp)) return IdnaProperty::kDisallowed;        // rule L
  if (is_old_hangul_jamo(cp)) return IdnaProperty::kDisallowed;        // rule I

  // Rule A ("LetterDigits"): Ll, Lu, Lo, Nd, Lm, Mn, Mc. (Lu/Lt are already
  // gone: uppercase is unstable under casefolding.)
  switch (cat) {
    case GeneralCategory::kLl:
    case GeneralCategory::kLu:
    case GeneralCategory::kLo:
    case GeneralCategory::kNd:
    case GeneralCategory::kLm:
    case GeneralCategory::kMn:
    case GeneralCategory::kMc:
      return IdnaProperty::kPvalid;
    default:
      return IdnaProperty::kDisallowed;
  }
}

std::string_view idna_property_name(IdnaProperty p) noexcept {
  switch (p) {
    case IdnaProperty::kPvalid: return "PVALID";
    case IdnaProperty::kContextJ: return "CONTEXTJ";
    case IdnaProperty::kContextO: return "CONTEXTO";
    case IdnaProperty::kDisallowed: return "DISALLOWED";
    case IdnaProperty::kUnassigned: return "UNASSIGNED";
  }
  return "??";
}

bool is_idna_permitted(CodePoint cp) noexcept {
  return idna_property(cp) == IdnaProperty::kPvalid;
}

std::vector<CodePoint> idna_permitted_in_range(CodePoint first, CodePoint last) {
  std::vector<CodePoint> out;
  for (CodePoint cp = first; cp <= last && cp >= first; ++cp) {
    if (is_idna_permitted(cp)) out.push_back(cp);
  }
  return out;
}

std::size_t idna_permitted_count() {
  static const std::size_t count = [] {
    std::size_t n = 0;
    for (CodePoint cp = 0; cp < 0x20000; ++cp) {
      if (is_idna_permitted(cp)) ++n;
    }
    return n;
  }();
  return count;
}

}  // namespace sham::unicode
