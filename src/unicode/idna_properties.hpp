// IDNA2008 derived property (RFC 5892). Determines which code points are
// permitted in IDN U-labels ("PVALID"); the paper's character repertoire
// for SimChar is exactly the PVALID set intersected with the font's
// coverage (Sections 3.2-3.3, Figures 3-4).
#pragma once

#include <string_view>
#include <vector>

#include "unicode/codepoint.hpp"

namespace sham::unicode {

enum class IdnaProperty : std::uint8_t {
  kPvalid,      // permitted for general use in IDNs
  kContextJ,    // joiner characters needing contextual rules
  kContextO,    // other characters needing contextual rules
  kDisallowed,
  kUnassigned,
};

/// Derived property per RFC 5892's rule cascade (Exceptions →
/// BackwardCompatible → Unassigned → LDH → JoinControl → Unstable →
/// IgnorableProperties → IgnorableBlocks → OldHangulJamo → LetterDigits →
/// DISALLOWED), evaluated against Unicode 14.0 category data.
[[nodiscard]] IdnaProperty idna_property(CodePoint cp) noexcept;

[[nodiscard]] std::string_view idna_property_name(IdnaProperty p) noexcept;

/// True iff `cp` may appear in a U-label. CONTEXTJ/CONTEXTO code points are
/// conservatively excluded (matching the paper, which uses the PVALID set).
[[nodiscard]] bool is_idna_permitted(CodePoint cp) noexcept;

/// All PVALID code points in [first, last].
[[nodiscard]] std::vector<CodePoint> idna_permitted_in_range(CodePoint first,
                                                             CodePoint last);

/// Count of PVALID code points in planes 0-1 (the "IDNA" set of Table 1).
[[nodiscard]] std::size_t idna_permitted_count();

}  // namespace sham::unicode
