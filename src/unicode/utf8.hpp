// UTF-8 encode/decode. Strict: rejects overlong forms, surrogates, and
// out-of-range values (domain-name inputs are attacker-controlled).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "unicode/codepoint.hpp"

namespace sham::unicode {

/// Append the UTF-8 encoding of `cp` to `out`. Throws std::invalid_argument
/// if `cp` is not a Unicode scalar value.
void append_utf8(CodePoint cp, std::string& out);

[[nodiscard]] std::string to_utf8(const U32String& text);
[[nodiscard]] std::string to_utf8(CodePoint cp);

/// Decode strictly; returns std::nullopt on any malformed byte sequence.
[[nodiscard]] std::optional<U32String> decode_utf8(std::string_view bytes);

/// Decode, substituting U+FFFD for malformed sequences (one replacement per
/// maximal invalid subpart, per the WHATWG/Unicode recommendation).
[[nodiscard]] U32String decode_utf8_lossy(std::string_view bytes);

/// Number of code points in a valid UTF-8 string (lossy count otherwise).
[[nodiscard]] std::size_t utf8_length(std::string_view bytes);

}  // namespace sham::unicode
