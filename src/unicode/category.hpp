// Unicode general-category lookup, backed by a table generated from the
// Unicode Character Database (see tools/gen_unicode_tables.py).
#pragma once

#include <string_view>

#include "unicode/codepoint.hpp"

namespace sham::unicode {

enum class GeneralCategory : std::uint8_t {
  kCc, kCf, kCn, kCo, kCs,              // other
  kLl, kLm, kLo, kLt, kLu,              // letters
  kMc, kMe, kMn,                        // marks
  kNd, kNl, kNo,                        // numbers
  kPc, kPd, kPe, kPf, kPi, kPo, kPs,    // punctuation
  kSc, kSk, kSm, kSo,                   // symbols
  kZl, kZp, kZs,                        // separators
};

/// General category of `cp`; code points outside the generated table range
/// (planes ≥ 2) report kCn (unassigned) — everything this project touches
/// lives in planes 0–1.
[[nodiscard]] GeneralCategory general_category(CodePoint cp) noexcept;

[[nodiscard]] std::string_view category_name(GeneralCategory cat) noexcept;

[[nodiscard]] bool is_letter(GeneralCategory cat) noexcept;
[[nodiscard]] bool is_mark(GeneralCategory cat) noexcept;
[[nodiscard]] bool is_decimal_number(GeneralCategory cat) noexcept;

/// True if `cp` is one of Unicode's 66 noncharacters.
[[nodiscard]] bool is_noncharacter(CodePoint cp) noexcept;

}  // namespace sham::unicode
