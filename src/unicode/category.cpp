#include "unicode/category.hpp"

#include <algorithm>
#include <array>
#include <iterator>

namespace sham::unicode {

namespace {

struct CategoryRange {
  std::uint32_t first;
  std::uint32_t last;
  GeneralCategory category;
};

constexpr CategoryRange kCategoryRanges[] = {
#include "unicode/data/category_ranges.inc"
};

}  // namespace

GeneralCategory general_category(CodePoint cp) noexcept {
  const auto* end = std::end(kCategoryRanges);
  // First range with last >= cp.
  const auto* it = std::lower_bound(
      std::begin(kCategoryRanges), end, cp,
      [](const CategoryRange& r, CodePoint value) { return r.last < value; });
  if (it == end || cp < it->first) return GeneralCategory::kCn;
  return it->category;
}

std::string_view category_name(GeneralCategory cat) noexcept {
  switch (cat) {
    case GeneralCategory::kCc: return "Cc";
    case GeneralCategory::kCf: return "Cf";
    case GeneralCategory::kCn: return "Cn";
    case GeneralCategory::kCo: return "Co";
    case GeneralCategory::kCs: return "Cs";
    case GeneralCategory::kLl: return "Ll";
    case GeneralCategory::kLm: return "Lm";
    case GeneralCategory::kLo: return "Lo";
    case GeneralCategory::kLt: return "Lt";
    case GeneralCategory::kLu: return "Lu";
    case GeneralCategory::kMc: return "Mc";
    case GeneralCategory::kMe: return "Me";
    case GeneralCategory::kMn: return "Mn";
    case GeneralCategory::kNd: return "Nd";
    case GeneralCategory::kNl: return "Nl";
    case GeneralCategory::kNo: return "No";
    case GeneralCategory::kPc: return "Pc";
    case GeneralCategory::kPd: return "Pd";
    case GeneralCategory::kPe: return "Pe";
    case GeneralCategory::kPf: return "Pf";
    case GeneralCategory::kPi: return "Pi";
    case GeneralCategory::kPo: return "Po";
    case GeneralCategory::kPs: return "Ps";
    case GeneralCategory::kSc: return "Sc";
    case GeneralCategory::kSk: return "Sk";
    case GeneralCategory::kSm: return "Sm";
    case GeneralCategory::kSo: return "So";
    case GeneralCategory::kZl: return "Zl";
    case GeneralCategory::kZp: return "Zp";
    case GeneralCategory::kZs: return "Zs";
  }
  return "??";
}

bool is_letter(GeneralCategory cat) noexcept {
  switch (cat) {
    case GeneralCategory::kLl:
    case GeneralCategory::kLm:
    case GeneralCategory::kLo:
    case GeneralCategory::kLt:
    case GeneralCategory::kLu:
      return true;
    default:
      return false;
  }
}

bool is_mark(GeneralCategory cat) noexcept {
  return cat == GeneralCategory::kMc || cat == GeneralCategory::kMe ||
         cat == GeneralCategory::kMn;
}

bool is_decimal_number(GeneralCategory cat) noexcept {
  return cat == GeneralCategory::kNd;
}

bool is_noncharacter(CodePoint cp) noexcept {
  if (cp >= 0xFDD0 && cp <= 0xFDEF) return true;
  const CodePoint low = cp & 0xFFFF;
  return low == 0xFFFE || low == 0xFFFF;
}

}  // namespace sham::unicode
