// Unicode block table (contiguous code-point ranges, Chapter 3 of TUS).
// Used for the block-level breakdowns of the homoglyph databases (Table 4)
// and for plane classification (BMP vs SMP, Figures 3-4 discussion).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "unicode/codepoint.hpp"

namespace sham::unicode {

struct Block {
  std::string_view name;
  CodePoint first;
  CodePoint last;
};

/// Name of the block containing `cp`, or "No_Block".
[[nodiscard]] std::string_view block_name(CodePoint cp) noexcept;

/// The block containing `cp`, if any.
[[nodiscard]] std::optional<Block> block_of(CodePoint cp) noexcept;

/// All known blocks, ordered by first code point.
[[nodiscard]] const std::vector<Block>& all_blocks();

enum class Plane { kBmp, kSmp, kOther };

[[nodiscard]] constexpr Plane plane_of(CodePoint cp) noexcept {
  if (cp <= 0xFFFF) return Plane::kBmp;
  if (cp <= 0x1FFFF) return Plane::kSmp;
  return Plane::kOther;
}

}  // namespace sham::unicode
