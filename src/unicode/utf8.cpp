#include "unicode/utf8.hpp"

#include <stdexcept>

namespace sham::unicode {

namespace {

// Decodes one scalar value starting at bytes[i]. On success advances i past
// the sequence and returns the code point; on failure advances i past the
// maximal invalid subpart and returns nullopt.
std::optional<CodePoint> decode_one(std::string_view bytes, std::size_t& i) {
  const auto b0 = static_cast<unsigned char>(bytes[i]);
  if (b0 < 0x80) {
    ++i;
    return b0;
  }

  int len = 0;
  CodePoint cp = 0;
  CodePoint min = 0;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    cp = b0 & 0x1F;
    min = 0x80;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    cp = b0 & 0x0F;
    min = 0x800;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    cp = b0 & 0x07;
    min = 0x10000;
  } else {
    ++i;  // stray continuation or invalid lead byte
    return std::nullopt;
  }

  std::size_t j = i + 1;
  for (int k = 1; k < len; ++k, ++j) {
    if (j >= bytes.size() || (static_cast<unsigned char>(bytes[j]) & 0xC0) != 0x80) {
      i = j;  // truncated sequence: consume lead + valid continuations
      return std::nullopt;
    }
    cp = (cp << 6) | (static_cast<unsigned char>(bytes[j]) & 0x3F);
  }
  i = j;
  if (cp < min || !is_scalar_value(cp)) return std::nullopt;  // overlong/surrogate/range
  return cp;
}

}  // namespace

void append_utf8(CodePoint cp, std::string& out) {
  if (!is_scalar_value(cp)) {
    throw std::invalid_argument{"append_utf8: not a Unicode scalar value"};
  }
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

std::string to_utf8(const U32String& text) {
  std::string out;
  out.reserve(text.size());
  for (CodePoint cp : text) append_utf8(cp, out);
  return out;
}

std::string to_utf8(CodePoint cp) {
  std::string out;
  append_utf8(cp, out);
  return out;
}

std::optional<U32String> decode_utf8(std::string_view bytes) {
  U32String out;
  out.reserve(bytes.size());
  std::size_t i = 0;
  while (i < bytes.size()) {
    const auto cp = decode_one(bytes, i);
    if (!cp) return std::nullopt;
    out.push_back(*cp);
  }
  return out;
}

U32String decode_utf8_lossy(std::string_view bytes) {
  U32String out;
  out.reserve(bytes.size());
  std::size_t i = 0;
  while (i < bytes.size()) {
    const auto cp = decode_one(bytes, i);
    out.push_back(cp.value_or(kReplacementChar));
  }
  return out;
}

std::size_t utf8_length(std::string_view bytes) { return decode_utf8_lossy(bytes).size(); }

}  // namespace sham::unicode
