// Core code-point type and a few classification helpers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sham::unicode {

/// A Unicode scalar value. We use a plain 32-bit integer rather than
/// char32_t so arithmetic and hashing stay unsurprising.
using CodePoint = std::uint32_t;

inline constexpr CodePoint kMaxCodePoint = 0x10FFFF;
inline constexpr CodePoint kReplacementChar = 0xFFFD;

/// A string of code points (decoded form of a U-label / domain name).
using U32String = std::vector<CodePoint>;

constexpr bool is_scalar_value(CodePoint cp) noexcept {
  return cp <= kMaxCodePoint && !(cp >= 0xD800 && cp <= 0xDFFF);
}

constexpr bool is_ascii(CodePoint cp) noexcept { return cp < 0x80; }

constexpr bool is_ascii_letter(CodePoint cp) noexcept {
  return (cp >= 'a' && cp <= 'z') || (cp >= 'A' && cp <= 'Z');
}

constexpr bool is_ascii_digit(CodePoint cp) noexcept { return cp >= '0' && cp <= '9'; }

/// LDH: the letter-digit-hyphen repertoire that plain (non-IDN) DNS labels
/// use at the protocol level.
constexpr bool is_ldh(CodePoint cp) noexcept {
  return is_ascii_letter(cp) || is_ascii_digit(cp) || cp == '-';
}

}  // namespace sham::unicode
