#include "unicode/confusables.hpp"

#include <algorithm>
#include <stdexcept>

#include "unicode/category.hpp"
#include "util/strings.hpp"

namespace sham::unicode {

namespace {

struct RawEntry {
  std::uint32_t source;
  std::uint32_t targets[3];
};

constexpr RawEntry kEmbedded[] = {
#include "unicode/data/confusables_data.inc"
};

}  // namespace

ConfusablesDb::ConfusablesDb(std::vector<ConfusableEntry> entries) {
  for (auto& e : entries) {
    if (e.skeleton.empty()) {
      throw std::invalid_argument{"ConfusablesDb: empty skeleton for " +
                                  util::format_codepoint(e.source)};
    }
    map_[e.source] = std::move(e.skeleton);
  }
}

namespace {

// Systematic confusable families of the real confusables.txt: styled
// alphabets whose members are glyph-wise letters/digits (all NFKC-unstable
// and therefore outside IDNA, like the bulk of the real UC database).
void append_sequence_family(std::vector<ConfusableEntry>& entries, CodePoint first,
                            CodePoint proto_first, int count) {
  for (int i = 0; i < count; ++i) {
    const CodePoint source = first + static_cast<CodePoint>(i);
    if (general_category(source) == GeneralCategory::kCn) continue;  // alphabet hole
    entries.push_back({source, U32String{proto_first + static_cast<CodePoint>(i)}});
  }
}

void append_systematic_families(std::vector<ConfusableEntry>& entries) {
  // Mathematical alphanumeric lowercase alphabets (bold, italic, ...).
  for (const CodePoint base :
       {0x1D41Au, 0x1D44Eu, 0x1D482u, 0x1D4B6u, 0x1D4EAu, 0x1D51Eu, 0x1D552u,
        0x1D586u, 0x1D5BAu, 0x1D5EEu, 0x1D622u, 0x1D656u, 0x1D68Au}) {
    append_sequence_family(entries, base, 'a', 26);
  }
  // Mathematical digit families.
  for (const CodePoint base : {0x1D7CEu, 0x1D7D8u, 0x1D7E2u, 0x1D7ECu, 0x1D7F6u}) {
    append_sequence_family(entries, base, '0', 10);
  }
  append_sequence_family(entries, 0xFF21, 'a', 26);   // fullwidth capitals
  append_sequence_family(entries, 0x24D0, 'a', 26);   // circled small letters
  append_sequence_family(entries, 0x24B6, 'a', 26);   // circled capitals
  append_sequence_family(entries, 0x249C, 'a', 26);   // parenthesized letters

  // Roman numerals (both cases) -> letter sequences.
  static constexpr const char* kRoman[] = {"i", "ii", "iii", "iv", "v", "vi",
                                           "vii", "viii", "ix", "x", "xi", "xii",
                                           "l", "c", "d", "m"};
  for (int upper = 0; upper < 2; ++upper) {
    const CodePoint base = upper ? 0x2160 : 0x2170;
    for (int i = 0; i < 16; ++i) {
      U32String skeleton;
      for (const char* p = kRoman[i]; *p != '\0'; ++p) {
        skeleton.push_back(static_cast<CodePoint>(*p));
      }
      entries.push_back({base + static_cast<CodePoint>(i), std::move(skeleton)});
    }
  }
}

}  // namespace

const ConfusablesDb& ConfusablesDb::embedded() {
  static const ConfusablesDb db = [] {
    std::vector<ConfusableEntry> entries;
    entries.reserve(std::size(kEmbedded) + 600);
    for (const auto& raw : kEmbedded) {
      ConfusableEntry e;
      e.source = raw.source;
      for (const auto t : raw.targets) {
        if (t != 0) e.skeleton.push_back(t);
      }
      entries.push_back(std::move(e));
    }
    append_systematic_families(entries);
    return ConfusablesDb{std::move(entries)};
  }();
  return db;
}

ConfusablesDb ConfusablesDb::parse(std::string_view text) {
  std::vector<ConfusableEntry> entries;
  std::size_t line_no = 0;
  for (const auto line : util::split(text, '\n')) {
    ++line_no;
    auto body = line;
    if (const auto hash = body.find('#'); hash != std::string_view::npos) {
      body = body.substr(0, hash);
    }
    body = util::trim(body);
    if (body.empty()) continue;

    const auto fields = util::split(body, ';');
    if (fields.size() < 2) {
      throw std::invalid_argument{"confusables.txt line " + std::to_string(line_no) +
                                  ": expected ';'-separated fields"};
    }
    ConfusableEntry e;
    e.source = util::parse_hex_codepoint(util::trim(fields[0]));
    for (const auto token : util::split_ws(util::trim(fields[1]))) {
      e.skeleton.push_back(util::parse_hex_codepoint(token));
    }
    if (e.skeleton.empty()) {
      throw std::invalid_argument{"confusables.txt line " + std::to_string(line_no) +
                                  ": empty target"};
    }
    entries.push_back(std::move(e));
  }
  return ConfusablesDb{std::move(entries)};
}

U32String ConfusablesDb::skeleton_of(CodePoint cp) const {
  const auto it = map_.find(cp);
  if (it == map_.end()) return U32String{cp};
  return it->second;
}

U32String ConfusablesDb::skeleton(const U32String& text) const {
  U32String current = text;
  // Apply the per-character mapping to a fixed point. Chains are short in
  // practice; the iteration cap guards against accidental cycles in
  // externally loaded data.
  for (int round = 0; round < 8; ++round) {
    U32String next;
    next.reserve(current.size());
    bool changed = false;
    for (const CodePoint cp : current) {
      const auto it = map_.find(cp);
      if (it == map_.end()) {
        next.push_back(cp);
      } else {
        // Self-mapping entries mark prototype membership; not a change.
        if (it->second.size() != 1 || it->second[0] != cp) changed = true;
        next.insert(next.end(), it->second.begin(), it->second.end());
      }
    }
    current = std::move(next);
    if (!changed) break;
  }
  return current;
}

bool ConfusablesDb::confusable(CodePoint a, CodePoint b) const {
  if (a == b) return true;
  const auto sa = skeleton(U32String{a});
  const auto sb = skeleton(U32String{b});
  return sa == sb;
}

std::vector<std::pair<CodePoint, CodePoint>> ConfusablesDb::single_char_pairs() const {
  std::vector<std::pair<CodePoint, CodePoint>> pairs;
  pairs.reserve(map_.size());
  for (const auto& [source, skel] : map_) {
    if (skel.size() == 1 && skel[0] != source) pairs.emplace_back(source, skel[0]);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::vector<CodePoint> ConfusablesDb::all_characters() const {
  std::unordered_set<CodePoint> seen;
  for (const auto& [source, skel] : map_) {
    seen.insert(source);
    seen.insert(skel.begin(), skel.end());
  }
  std::vector<CodePoint> out{seen.begin(), seen.end()};
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sham::unicode
