#include "unicode/script.hpp"

#include <algorithm>

namespace sham::unicode {

namespace {

struct ScriptRange {
  CodePoint first;
  CodePoint last;
  Script script;
};

// Coarse script ranges. This is intentionally block-granular: it is used
// for browser-policy emulation and language guessing, not for spec-exact
// Script property queries.
constexpr ScriptRange kScriptRanges[] = {
    {0x0000, 0x0040, Script::kCommon},
    {0x0041, 0x005A, Script::kLatin},
    {0x005B, 0x0060, Script::kCommon},
    {0x0061, 0x007A, Script::kLatin},
    {0x007B, 0x00BF, Script::kCommon},
    {0x00C0, 0x024F, Script::kLatin},       // Latin-1 letters .. Extended-B
    {0x0250, 0x02AF, Script::kLatin},       // IPA
    {0x02B0, 0x02FF, Script::kCommon},
    {0x0300, 0x036F, Script::kInherited},   // combining marks
    {0x0370, 0x03FF, Script::kGreek},
    {0x0400, 0x052F, Script::kCyrillic},
    {0x0530, 0x058F, Script::kArmenian},
    {0x0590, 0x05FF, Script::kHebrew},
    {0x0600, 0x06FF, Script::kArabic},
    {0x0750, 0x077F, Script::kArabic},
    {0x08A0, 0x08FF, Script::kArabic},
    {0x0900, 0x097F, Script::kDevanagari},
    {0x0980, 0x09FF, Script::kBengali},
    {0x0A00, 0x0A7F, Script::kGurmukhi},
    {0x0A80, 0x0AFF, Script::kGujarati},
    {0x0B00, 0x0B7F, Script::kOriya},
    {0x0B80, 0x0BFF, Script::kTamil},
    {0x0C00, 0x0C7F, Script::kTelugu},
    {0x0C80, 0x0CFF, Script::kKannada},
    {0x0D00, 0x0D7F, Script::kMalayalam},
    {0x0D80, 0x0DFF, Script::kSinhala},
    {0x0E00, 0x0E7F, Script::kThai},
    {0x0E80, 0x0EFF, Script::kLao},
    {0x0F00, 0x0FFF, Script::kTibetan},
    {0x1000, 0x109F, Script::kMyanmar},
    {0x10A0, 0x10FF, Script::kGeorgian},
    {0x1100, 0x11FF, Script::kHangul},
    {0x1200, 0x139F, Script::kEthiopic},
    {0x13A0, 0x13FF, Script::kCherokee},
    {0x1400, 0x167F, Script::kCanadianAboriginal},
    {0x1780, 0x17FF, Script::kKhmer},
    {0x1800, 0x18AF, Script::kMongolian},
    {0x18B0, 0x18FF, Script::kCanadianAboriginal},
    {0x1C80, 0x1C8F, Script::kCyrillic},
    {0x1C90, 0x1CBF, Script::kGeorgian},
    {0x1D00, 0x1DBF, Script::kLatin},       // phonetic extensions (mostly)
    {0x1DC0, 0x1DFF, Script::kInherited},
    {0x1E00, 0x1EFF, Script::kLatin},
    {0x1F00, 0x1FFF, Script::kGreek},
    {0x2000, 0x20CF, Script::kCommon},
    {0x20D0, 0x20FF, Script::kInherited},
    {0x2100, 0x2BFF, Script::kCommon},      // symbols, arrows, math
    {0x2C60, 0x2C7F, Script::kLatin},
    {0x2D00, 0x2D2F, Script::kGeorgian},
    {0x2D80, 0x2DDF, Script::kEthiopic},
    {0x2DE0, 0x2DFF, Script::kCyrillic},
    {0x2E80, 0x2FFF, Script::kHan},         // radicals
    {0x3000, 0x303F, Script::kCommon},
    {0x3040, 0x309F, Script::kHiragana},
    {0x30A0, 0x30FF, Script::kKatakana},
    {0x3100, 0x312F, Script::kBopomofo},
    {0x3130, 0x318F, Script::kHangul},
    {0x31A0, 0x31BF, Script::kBopomofo},
    {0x31F0, 0x31FF, Script::kKatakana},
    {0x3400, 0x4DBF, Script::kHan},
    {0x4E00, 0x9FFF, Script::kHan},
    {0xA000, 0xA4CF, Script::kYi},
    {0xA4D0, 0xA4FF, Script::kLisu},
    {0xA500, 0xA63F, Script::kVai},
    {0xA640, 0xA69F, Script::kCyrillic},
    {0xA720, 0xA7FF, Script::kLatin},
    {0xA960, 0xA97F, Script::kHangul},
    {0xAA00, 0xAA5F, Script::kCham},
    {0xAB30, 0xAB6F, Script::kLatin},
    {0xAB70, 0xABBF, Script::kCherokee},
    {0xAC00, 0xD7FF, Script::kHangul},
    {0xF900, 0xFAFF, Script::kHan},
    {0xFB00, 0xFB4F, Script::kLatin},       // alphabetic presentation (approx.)
    {0xFB50, 0xFDFF, Script::kArabic},
    {0xFE70, 0xFEFF, Script::kArabic},
    {0xFF00, 0xFF20, Script::kCommon},
    {0xFF21, 0xFF5A, Script::kLatin},       // fullwidth letters
    {0xFF5B, 0xFF65, Script::kCommon},
    {0xFF66, 0xFF9F, Script::kKatakana},    // halfwidth katakana
    {0xFFA0, 0xFFDC, Script::kHangul},
    {0x118A0, 0x118FF, Script::kWarangCiti},
    {0x1D400, 0x1D7FF, Script::kCommon},    // mathematical alphanumerics
};

}  // namespace

Script script_of(CodePoint cp) noexcept {
  const auto* end = std::end(kScriptRanges);
  const auto* it = std::lower_bound(
      std::begin(kScriptRanges), end, cp,
      [](const ScriptRange& r, CodePoint value) { return r.last < value; });
  if (it == end || cp < it->first) return Script::kUnknown;
  return it->script;
}

std::string_view script_name(Script script) noexcept {
  switch (script) {
    case Script::kCommon: return "Common";
    case Script::kInherited: return "Inherited";
    case Script::kLatin: return "Latin";
    case Script::kGreek: return "Greek";
    case Script::kCyrillic: return "Cyrillic";
    case Script::kArmenian: return "Armenian";
    case Script::kHebrew: return "Hebrew";
    case Script::kArabic: return "Arabic";
    case Script::kDevanagari: return "Devanagari";
    case Script::kBengali: return "Bengali";
    case Script::kGurmukhi: return "Gurmukhi";
    case Script::kGujarati: return "Gujarati";
    case Script::kOriya: return "Oriya";
    case Script::kTamil: return "Tamil";
    case Script::kTelugu: return "Telugu";
    case Script::kKannada: return "Kannada";
    case Script::kMalayalam: return "Malayalam";
    case Script::kSinhala: return "Sinhala";
    case Script::kThai: return "Thai";
    case Script::kLao: return "Lao";
    case Script::kTibetan: return "Tibetan";
    case Script::kMyanmar: return "Myanmar";
    case Script::kGeorgian: return "Georgian";
    case Script::kHangul: return "Hangul";
    case Script::kEthiopic: return "Ethiopic";
    case Script::kCherokee: return "Cherokee";
    case Script::kCanadianAboriginal: return "Canadian Aboriginal";
    case Script::kKhmer: return "Khmer";
    case Script::kMongolian: return "Mongolian";
    case Script::kHan: return "Han";
    case Script::kHiragana: return "Hiragana";
    case Script::kKatakana: return "Katakana";
    case Script::kBopomofo: return "Bopomofo";
    case Script::kYi: return "Yi";
    case Script::kLisu: return "Lisu";
    case Script::kVai: return "Vai";
    case Script::kCham: return "Cham";
    case Script::kWarangCiti: return "Warang Citi";
    case Script::kUnknown: return "Unknown";
  }
  return "??";
}

std::vector<Script> scripts_in(const U32String& text) {
  std::vector<Script> out;
  for (const CodePoint cp : text) {
    const Script s = script_of(cp);
    if (s == Script::kCommon || s == Script::kInherited) continue;
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  return out;
}

bool is_mixed_script(const U32String& text) { return scripts_in(text).size() >= 2; }

}  // namespace sham::unicode
