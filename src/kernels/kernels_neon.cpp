// NEON (aarch64 ASIMD) kernel variants. Only the ∆ kernels are
// vectorized: vcntq_u8 gives a native per-byte popcount, but NEON has no
// 64-bit lane multiply, so the splitmix64/FNV hash kernels stay on the
// scalar reference (see the honesty notes in kernels.hpp).
#include "kernels/kernel_table.hpp"

#if defined(SHAM_KERNELS_HAVE_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

namespace sham::kernels::detail {

namespace {

/// popcount of one 128-bit register, widened to a single u64.
inline std::uint64_t popcount_u128(uint8x16_t v) noexcept {
  return vaddlvq_u8(vcntq_u8(v));
}

void delta_batch_neon(const std::uint64_t* query, const std::uint64_t* rows,
                      std::size_t stride, std::size_t begin, std::size_t end,
                      std::int32_t* out) {
  std::size_t g = begin;
  // Two glyphs per pass: each 128-bit load spans columns g and g+1 of one
  // word row; per-byte counts accumulate over the 16 rows (max 128 < 256),
  // then split into the two 64-bit halves.
  for (; g + 2 <= end; g += 2) {
    uint8x16_t acc = vdupq_n_u8(0);
    for (std::size_t w = 0; w < kGlyphWords; ++w) {
      const uint64x2_t v = vld1q_u64(rows + w * stride + g);
      const uint64x2_t x = veorq_u64(v, vdupq_n_u64(query[w]));
      acc = vaddq_u8(acc, vcntq_u8(vreinterpretq_u8_u64(x)));
    }
    const uint64x2_t sums = vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(acc)));
    out[g - begin] = static_cast<std::int32_t>(vgetq_lane_u64(sums, 0));
    out[g - begin + 1] = static_cast<std::int32_t>(vgetq_lane_u64(sums, 1));
  }
  for (; g < end; ++g) {
    std::uint64_t sum = 0;
    for (std::size_t w = 0; w < kGlyphWords; w += 2) {
      uint64x2_t v = {rows[w * stride + g], rows[(w + 1) * stride + g]};
      const uint64x2_t q = {query[w], query[w + 1]};
      sum += popcount_u128(vreinterpretq_u8_u64(veorq_u64(v, q)));
    }
    out[g - begin] = static_cast<std::int32_t>(sum);
  }
}

int delta_one_neon(const std::uint64_t* a, const std::uint64_t* b) {
  uint8x16_t acc = vdupq_n_u8(0);
  for (std::size_t w = 0; w < kGlyphWords; w += 2) {
    const uint64x2_t va = vld1q_u64(a + w);
    const uint64x2_t vb = vld1q_u64(b + w);
    acc = vaddq_u8(acc, vcntq_u8(vreinterpretq_u8_u64(veorq_u64(va, vb))));
  }
  // Widening reduction: per-byte counts stay <= 64 (8 passes x 8 bits) but
  // the 1024-bit delta can reach 1024, so a u8 reduction would wrap mod 256.
  return static_cast<int>(vaddlvq_u8(acc));
}

constexpr KernelTable kNeonTable{
    Level::kNeon,      delta_batch_neon, delta_one_neon,
    block_hash_scalar, fnv1a_scalar,     fnv1a4_scalar,
};

}  // namespace

const KernelTable* neon_table() noexcept { return &kNeonTable; }

}  // namespace sham::kernels::detail

#endif  // SHAM_KERNELS_HAVE_NEON && __aarch64__
