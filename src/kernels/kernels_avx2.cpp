// AVX2 kernel variants. Compiled with -mavx2 -mpopcnt in its own TU; the
// dispatcher only hands out this table when cpuid reports AVX2, so no
// function here runs on a host without it.
//
//   delta_batch  4 glyphs per pass: one 256-bit load per word row XORed
//                against the broadcast query word, bytewise popcount via
//                the classic nibble-LUT pshufb, horizontal-summed with
//                psadbw into 4 u64 lanes. Byte accumulators are safe: 16
//                words x <= 8 set bits per byte = 128 < 256.
//   block_hash   4 independent splitmix64 chains in the 4 u64 lanes; the
//                64x64 multiply is emulated with _mm256_mul_epu32
//                (lo*lo + ((lo*hi + hi*lo) << 32), exact mod 2^64).
//   fnv1a4       4 independent FNV-1a chains in the 4 u64 lanes with the
//                same multiply emulation; chains longer than the shortest
//                input finish on the scalar reference.
//   fnv1a        single chain — inherently serial (see kernels.hpp), so
//                this table reuses the scalar reference.
#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "kernels/kernel_table.hpp"

namespace sham::kernels::detail {

namespace {

/// Exact 64-bit lane multiply (AVX2 has no _mm256_mullo_epi64).
inline __m256i mul64(__m256i a, __m256i b) noexcept {
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

/// Per-byte popcount of a 256-bit register (nibble lookup).
inline __m256i popcount_bytes(__m256i v) noexcept {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

void delta_batch_avx2(const std::uint64_t* query, const std::uint64_t* rows,
                      std::size_t stride, std::size_t begin, std::size_t end,
                      std::int32_t* out) {
  __m256i q[kGlyphWords];
  for (std::size_t w = 0; w < kGlyphWords; ++w) {
    q[w] = _mm256_set1_epi64x(static_cast<long long>(query[w]));
  }
  std::size_t g = begin;
  for (; g + 4 <= end; g += 4) {
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t w = 0; w < kGlyphWords; ++w) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(rows + w * stride + g));
      acc = _mm256_add_epi8(acc, popcount_bytes(_mm256_xor_si256(v, q[w])));
    }
    const __m256i sums = _mm256_sad_epu8(acc, _mm256_setzero_si256());
    alignas(32) std::uint64_t lane[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), sums);
    std::int32_t* o = out + (g - begin);
    o[0] = static_cast<std::int32_t>(lane[0]);
    o[1] = static_cast<std::int32_t>(lane[1]);
    o[2] = static_cast<std::int32_t>(lane[2]);
    o[3] = static_cast<std::int32_t>(lane[3]);
  }
  // Tail columns (< 4): hardware-popcnt scalar, same values.
  for (; g < end; ++g) {
    int sum = 0;
    for (std::size_t w = 0; w < kGlyphWords; ++w) {
      sum += static_cast<int>(
          _mm_popcnt_u64(rows[w * stride + g] ^ query[w]));
    }
    out[g - begin] = sum;
  }
}

int delta_one_avx2(const std::uint64_t* a, const std::uint64_t* b) {
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t w = 0; w < kGlyphWords; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_add_epi8(acc, popcount_bytes(_mm256_xor_si256(va, vb)));
  }
  const __m256i sums = _mm256_sad_epu8(acc, _mm256_setzero_si256());
  alignas(32) std::uint64_t lane[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), sums);
  return static_cast<int>(lane[0] + lane[1] + lane[2] + lane[3]);
}

/// Vector splitmix64, bit-exact per 64-bit lane.
inline __m256i splitmix64_vec(__m256i x) noexcept {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9e3779b97f4a7c15LL));
  x = mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
            _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
            _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

void block_hash_avx2(const std::uint64_t* rows, std::size_t stride,
                     std::size_t count, unsigned first_word,
                     unsigned last_word, std::uint64_t* out) {
  const __m256i seed =
      _mm256_set1_epi64x(static_cast<long long>(kBlockHashSeed));
  std::size_t g = 0;
  for (; g + 4 <= count; g += 4) {
    __m256i h = seed;
    for (unsigned w = first_word; w < last_word; ++w) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(rows + w * stride + g));
      h = splitmix64_vec(_mm256_xor_si256(h, v));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + g), h);
  }
  for (; g < count; ++g) {
    std::uint64_t h = kBlockHashSeed;
    for (unsigned w = first_word; w < last_word; ++w) {
      h = splitmix64(h ^ rows[w * stride + g]);
    }
    out[g] = h;
  }
}

void fnv1a4_avx2(const std::uint32_t* const values[4],
                 const std::size_t lengths[4], const std::uint64_t seeds[4],
                 std::uint64_t out[4]) {
  const std::size_t common =
      std::min(std::min(lengths[0], lengths[1]), std::min(lengths[2], lengths[3]));
  __m256i h = _mm256_set_epi64x(
      static_cast<long long>(seeds[3]), static_cast<long long>(seeds[2]),
      static_cast<long long>(seeds[1]), static_cast<long long>(seeds[0]));
  const __m256i prime = _mm256_set1_epi64x(static_cast<long long>(kFnvPrime));
  const __m256i byte_mask = _mm256_set1_epi64x(0xFF);
  for (std::size_t i = 0; i < common; ++i) {
    const __m256i v = _mm256_set_epi64x(values[3][i], values[2][i],
                                        values[1][i], values[0][i]);
    for (int shift = 0; shift < 32; shift += 8) {
      const __m256i b =
          _mm256_and_si256(_mm256_srli_epi64(v, shift), byte_mask);
      h = mul64(_mm256_xor_si256(h, b), prime);
    }
  }
  alignas(32) std::uint64_t lane[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), h);
  for (int c = 0; c < 4; ++c) {
    out[c] = fnv1a_scalar(lane[c], values[c] + common, lengths[c] - common);
  }
}

constexpr KernelTable kAvx2Table{
    Level::kAvx2,    delta_batch_avx2, delta_one_avx2,
    block_hash_avx2, fnv1a_scalar,     fnv1a4_avx2,
};

}  // namespace

const KernelTable* avx2_table() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") ? &kAvx2Table : nullptr;
#else
  return nullptr;
#endif
}

}  // namespace sham::kernels::detail
