// Scalar reference kernels + the runtime dispatch state. The scalar
// variants are the semantics: every arch table is tested bit-exact
// against them (tests/test_kernels.cpp), and the probe-side helpers
// (block_hash_u1024, fnv1a_span fallback) pin the hash definitions.
#include "kernels/kernels.hpp"

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>

#include "kernels/kernel_table.hpp"

namespace sham::kernels {

namespace detail {

void delta_batch_scalar(const std::uint64_t* query, const std::uint64_t* rows,
                        std::size_t stride, std::size_t begin, std::size_t end,
                        std::int32_t* out) {
  const std::size_t n = end - begin;
  for (std::size_t k = 0; k < n; ++k) out[k] = 0;
  // Word-major like the SIMD variants: each row is one linear stream, the
  // query word stays in a register.
  for (std::size_t w = 0; w < kGlyphWords; ++w) {
    const std::uint64_t qw = query[w];
    const std::uint64_t* row = rows + w * stride;
    for (std::size_t k = 0; k < n; ++k) {
      out[k] += std::popcount(row[begin + k] ^ qw);
    }
  }
}

int delta_one_scalar(const std::uint64_t* a, const std::uint64_t* b) {
  int sum = 0;
  for (std::size_t w = 0; w < kGlyphWords; ++w) {
    sum += std::popcount(a[w] ^ b[w]);
  }
  return sum;
}

void block_hash_scalar(const std::uint64_t* rows, std::size_t stride,
                       std::size_t count, unsigned first_word,
                       unsigned last_word, std::uint64_t* out) {
  for (std::size_t g = 0; g < count; ++g) out[g] = kBlockHashSeed;
  for (unsigned w = first_word; w < last_word; ++w) {
    const std::uint64_t* row = rows + w * stride;
    for (std::size_t g = 0; g < count; ++g) {
      out[g] = splitmix64(out[g] ^ row[g]);
    }
  }
}

std::uint64_t fnv1a_scalar(std::uint64_t seed, const std::uint32_t* values,
                           std::size_t n) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = values[i];
    h = (h ^ (v & 0xFF)) * kFnvPrime;
    h = (h ^ ((v >> 8) & 0xFF)) * kFnvPrime;
    h = (h ^ ((v >> 16) & 0xFF)) * kFnvPrime;
    h = (h ^ ((v >> 24) & 0xFF)) * kFnvPrime;
  }
  return h;
}

void fnv1a4_scalar(const std::uint32_t* const values[4],
                   const std::size_t lengths[4], const std::uint64_t seeds[4],
                   std::uint64_t out[4]) {
  for (int c = 0; c < 4; ++c) {
    out[c] = fnv1a_scalar(seeds[c], values[c], lengths[c]);
  }
}

namespace {

constexpr KernelTable kScalarTable{
    Level::kScalar,      delta_batch_scalar, delta_one_scalar,
    block_hash_scalar,   fnv1a_scalar,       fnv1a4_scalar,
};

const KernelTable* table_for(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return &kScalarTable;
    case Level::kAvx2:
#if defined(SHAM_KERNELS_HAVE_AVX2)
      return avx2_table();
#else
      return nullptr;
#endif
    case Level::kNeon:
#if defined(SHAM_KERNELS_HAVE_NEON)
      return neon_table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

/// Startup pick: SHAM_KERNEL_LEVEL when set and runnable (auto/unknown/
/// unsupported values fall through), else the best level the host runs.
const KernelTable* startup_table() noexcept {
  if (const char* env = std::getenv("SHAM_KERNEL_LEVEL")) {
    if (const auto level = parse_level(env)) {
      if (const auto* table = table_for(*level)) return table;
    }
  }
  for (const Level level : {Level::kAvx2, Level::kNeon}) {
    if (const auto* table = table_for(level)) return table;
  }
  return &kScalarTable;
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable& active() noexcept {
  const auto* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // First-touch init must not clobber a concurrent force_level(): only
    // install the startup pick if the slot is still empty, otherwise adopt
    // whatever won the exchange.
    const KernelTable* expected = nullptr;
    table = startup_table();
    if (!g_active.compare_exchange_strong(expected, table,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      table = expected;
    }
  }
  return *table;
}

}  // namespace
}  // namespace detail

std::string_view level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kNeon: return "neon";
  }
  return "unknown";
}

std::optional<Level> parse_level(std::string_view name) noexcept {
  if (name == "scalar") return Level::kScalar;
  if (name == "avx2") return Level::kAvx2;
  if (name == "neon") return Level::kNeon;
  return std::nullopt;
}

std::vector<Level> supported_levels() {
  std::vector<Level> levels{Level::kScalar};
  for (const Level level : {Level::kAvx2, Level::kNeon}) {
    if (detail::table_for(level) != nullptr) levels.push_back(level);
  }
  return levels;
}

Level active_level() noexcept { return detail::active().level; }

bool force_level(Level level) noexcept {
  const auto* table = detail::table_for(level);
  if (table == nullptr) return false;
  detail::g_active.store(table, std::memory_order_release);
  return true;
}

void reset_level() noexcept {
  detail::g_active.store(detail::startup_table(), std::memory_order_release);
}

void delta_batch_u1024(const std::uint64_t* query, const GlyphPanel& panel,
                       std::size_t begin, std::size_t end,
                       std::int32_t* out) noexcept {
  assert(begin <= end && end <= panel.size());
  if (begin >= end) return;
  detail::active().delta_batch(query, panel.word_row(0), panel.stride(), begin,
                               end, out);
}

int delta_u1024(const std::uint64_t* a, const std::uint64_t* b) noexcept {
  return detail::active().delta_one(a, b);
}

void block_hash_batch(const GlyphPanel& panel, unsigned first_word,
                      unsigned last_word, std::uint64_t* out) noexcept {
  assert(first_word <= last_word && last_word <= kGlyphWords);
  if (panel.size() == 0) return;
  detail::active().block_hash(panel.word_row(0), panel.stride(), panel.size(),
                              first_word, last_word, out);
}

std::uint64_t block_hash_u1024(const std::uint64_t* words, unsigned first_word,
                               unsigned last_word) noexcept {
  std::uint64_t h = kBlockHashSeed;
  for (unsigned w = first_word; w < last_word; ++w) {
    h = detail::splitmix64(h ^ words[w]);
  }
  return h;
}

std::uint64_t fnv1a_span(std::uint64_t seed, const std::uint32_t* values,
                         std::size_t n) noexcept {
  return detail::active().fnv1a(seed, values, n);
}

void fnv1a_batch4(const std::uint32_t* const values[4],
                  const std::size_t lengths[4], const std::uint64_t seeds[4],
                  std::uint64_t out[4]) noexcept {
  detail::active().fnv1a4(values, lengths, seeds, out);
}

}  // namespace sham::kernels
