// Internal dispatch-table contract shared by kernels.cpp and the
// arch-specific TUs (kernels_avx2.cpp / kernels_neon.cpp). Not installed
// into the public surface — include kernels/kernels.hpp instead.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/kernels.hpp"

namespace sham::kernels::detail {

/// One fully-populated variant set. Raw pointers + stride (not GlyphPanel)
/// so arch TUs stay free of layout assumptions beyond "row-linear".
struct KernelTable {
  Level level;
  void (*delta_batch)(const std::uint64_t* query, const std::uint64_t* rows,
                      std::size_t stride, std::size_t begin, std::size_t end,
                      std::int32_t* out);
  int (*delta_one)(const std::uint64_t* a, const std::uint64_t* b);
  void (*block_hash)(const std::uint64_t* rows, std::size_t stride,
                     std::size_t count, unsigned first_word,
                     unsigned last_word, std::uint64_t* out);
  std::uint64_t (*fnv1a)(std::uint64_t seed, const std::uint32_t* values,
                         std::size_t n);
  void (*fnv1a4)(const std::uint32_t* const values[4],
                 const std::size_t lengths[4], const std::uint64_t seeds[4],
                 std::uint64_t out[4]);
};

// Scalar reference implementations (kernels.cpp). Arch tables may reuse
// them for tails and for chain-bound kernels they cannot improve.
void delta_batch_scalar(const std::uint64_t* query, const std::uint64_t* rows,
                        std::size_t stride, std::size_t begin, std::size_t end,
                        std::int32_t* out);
int delta_one_scalar(const std::uint64_t* a, const std::uint64_t* b);
void block_hash_scalar(const std::uint64_t* rows, std::size_t stride,
                       std::size_t count, unsigned first_word,
                       unsigned last_word, std::uint64_t* out);
std::uint64_t fnv1a_scalar(std::uint64_t seed, const std::uint32_t* values,
                           std::size_t n);
void fnv1a4_scalar(const std::uint32_t* const values[4],
                   const std::size_t lengths[4], const std::uint64_t seeds[4],
                   std::uint64_t out[4]);

/// splitmix64 — the block-key mixing step; arch TUs replicate it in
/// vector form and the differential suite pins them together.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

#if defined(SHAM_KERNELS_HAVE_AVX2)
/// nullptr when the build has AVX2 code but the host CPU lacks it.
const KernelTable* avx2_table() noexcept;
#endif
#if defined(SHAM_KERNELS_HAVE_NEON)
const KernelTable* neon_table() noexcept;
#endif

}  // namespace sham::kernels::detail
