// Structure-of-arrays glyph bitmap storage for the SIMD kernel layer.
//
// A GlyphPanel holds N 1024-bit bitmaps word-major: word w of glyph g
// lives at word_row(w)[g]. A batched ∆ against one query bitmap therefore
// streams each of the 16 word rows linearly, and a 4-lane SIMD pass loads
// four neighbouring glyphs with a single 256-bit load. Rows are 64-byte
// aligned and padded to a multiple of 8 columns; padding columns are
// zero, so a vector tail may read (never write) past size() safely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>

namespace sham::kernels {

/// Words per glyph bitmap: 32x32 pixels = 1024 bits = 16 u64 words.
/// (font::GlyphBitmap::kWords static_asserts against this.)
inline constexpr std::size_t kGlyphWords = 16;
/// Row alignment: one cache line, and wide enough for 512-bit loads.
inline constexpr std::size_t kPanelAlign = 64;
/// Columns are padded to a multiple of this (8 u64 = one 64-byte line).
inline constexpr std::size_t kPanelPad = 8;

class GlyphPanel {
 public:
  GlyphPanel() = default;
  explicit GlyphPanel(std::size_t count) { reset(count); }

  GlyphPanel(const GlyphPanel& other) { *this = other; }
  GlyphPanel& operator=(const GlyphPanel& other) {
    if (this == &other) return *this;
    if (other.view_ != nullptr) {
      // A view copy shares the immutable mapped storage (and its keepalive).
      words_.reset();
      count_ = other.count_;
      stride_ = other.stride_;
      view_ = other.view_;
      backing_ = other.backing_;
      return *this;
    }
    view_ = nullptr;
    backing_.reset();
    reset(other.count_);
    if (stride_ != 0) std::memcpy(words_.get(), other.words_.get(), bytes());
    return *this;
  }
  GlyphPanel(GlyphPanel&& other) noexcept
      : count_{std::exchange(other.count_, 0)},
        stride_{std::exchange(other.stride_, 0)},
        words_{std::move(other.words_)},
        view_{std::exchange(other.view_, nullptr)},
        backing_{std::move(other.backing_)} {}
  GlyphPanel& operator=(GlyphPanel&& other) noexcept {
    count_ = std::exchange(other.count_, 0);
    stride_ = std::exchange(other.stride_, 0);
    words_ = std::move(other.words_);
    view_ = std::exchange(other.view_, nullptr);
    backing_ = std::move(other.backing_);
    return *this;
  }

  /// Adopt immutable word-major storage in place (e.g. a mmap'd DB-artifact
  /// section) — the kernels then stream vector lanes straight from the
  /// mapped region, no copy. `words` must satisfy the owned-storage layout
  /// contract (64-byte aligned, stride a padded multiple of kPanelPad,
  /// kGlyphWords rows of `stride` words); `backing` keeps the mapping
  /// alive. Throws std::runtime_error on a contract violation: the caller
  /// may be handing us untrusted file contents.
  static GlyphPanel adopt_view(const std::uint64_t* words, std::size_t count,
                               std::size_t stride,
                               std::shared_ptr<const void> backing) {
    const auto expected_stride =
        count == 0 ? 0 : (count + kPanelPad - 1) / kPanelPad * kPanelPad;
    if (stride != expected_stride) {
      throw std::runtime_error{"GlyphPanel: view stride violates pad contract"};
    }
    if (stride != 0 &&
        reinterpret_cast<std::uintptr_t>(words) % kPanelAlign != 0) {
      throw std::runtime_error{"GlyphPanel: view storage not 64-byte aligned"};
    }
    GlyphPanel panel;
    panel.count_ = count;
    panel.stride_ = stride;
    panel.view_ = stride == 0 ? nullptr : words;
    panel.backing_ = std::move(backing);
    return panel;
  }

  /// True when the panel reads adopted (immutable) storage.
  [[nodiscard]] bool is_view() const noexcept { return view_ != nullptr; }

  /// Reallocate for `count` glyphs, all words (including padding) zeroed.
  void reset(std::size_t count) {
    view_ = nullptr;
    backing_.reset();
    count_ = count;
    stride_ = count == 0 ? 0 : (count + kPanelPad - 1) / kPanelPad * kPanelPad;
    words_.reset();
    if (stride_ == 0) return;
    auto* p = static_cast<std::uint64_t*>(
        ::operator new[](bytes(), std::align_val_t{kPanelAlign}));
    std::memset(p, 0, bytes());
    words_.reset(p);
  }

  /// Scatter one glyph's 16 words into column `i` of every word row.
  /// Owned storage only (views are immutable by construction).
  void set_glyph(std::size_t i, const std::uint64_t* glyph_words) noexcept {
    for (std::size_t w = 0; w < kGlyphWords; ++w) {
      words_[w * stride_ + i] = glyph_words[w];
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  [[nodiscard]] const std::uint64_t* word_row(std::size_t w) const noexcept {
    return (view_ != nullptr ? view_ : words_.get()) + w * stride_;
  }

 private:
  struct AlignedDelete {
    void operator()(std::uint64_t* p) const noexcept {
      ::operator delete[](p, std::align_val_t{kPanelAlign});
    }
  };
  [[nodiscard]] std::size_t bytes() const noexcept {
    return kGlyphWords * stride_ * sizeof(std::uint64_t);
  }

  std::size_t count_ = 0;
  std::size_t stride_ = 0;
  std::unique_ptr<std::uint64_t[], AlignedDelete> words_;
  /// Non-null when the panel is a view over adopted immutable storage;
  /// word_row then reads view_ and `backing_` keeps the storage alive.
  const std::uint64_t* view_ = nullptr;
  std::shared_ptr<const void> backing_;
};

/// On-disk layout contract for serialized panels (db/format.hpp GPAN
/// section): rows must land 64-byte aligned with zeroed pad so the AVX2/
/// NEON batched ∆ can read the mapped region directly.
static_assert(kPanelAlign == 64, "GPAN section layout assumes cache-line rows");
static_assert(kPanelPad * sizeof(std::uint64_t) == kPanelAlign,
              "row stride pad must preserve 64-byte row alignment");
static_assert(kGlyphWords == 16, "GPAN rows serialize 16 words per glyph");

}  // namespace sham::kernels
