// sham_kernels: vectorized kernels for the bit-parallel hot paths, with
// runtime CPU dispatch (ROADMAP "SIMD kernels" item).
//
// Three primitives dominate SimChar Step II and skeleton hashing:
//
//   delta_batch_u1024  ∆ = popcount(A XOR B) of one query bitmap against a
//                      contiguous column range of a GlyphPanel (the Step II
//                      inner loop, Suzuki et al. §3.3/§4.2);
//   block_hash_batch   PairMiner's pigeonhole block keys — a splitmix64
//                      chain over a word span of every panel column;
//   fnv1a_span         length-prefixed FNV-1a over u32 streams (the
//                      skeleton-index hash), plus fnv1a_batch4, which runs
//                      four independent chains at once (index build).
//
// Every kernel has a scalar reference implementation plus AVX2 and NEON
// variants, compiled in arch-specific TUs and selected ONCE at startup
// into a function-pointer table: x86 probes cpuid (via
// __builtin_cpu_supports), aarch64 always has ASIMD. Tests pin the table
// with force_level() — or the SHAM_KERNEL_LEVEL environment variable
// (scalar | avx2 | neon | auto), read at startup — and assert bit-exact
// agreement with the scalar reference on every reachable level
// (tests/test_kernels.cpp); pair sets, skeleton buckets, and detect()
// output are byte-identical under every level by construction.
//
// Honesty notes, so the dispatch table is never mistaken for magic:
//   * fnv1a_span is a strict hash chain (h = (h ^ byte) * p); the value at
//     step k depends on step k-1, so a single chain cannot be vectorized
//     without changing the hash. Every level therefore runs the same
//     scalar chain for fnv1a_span; the SIMD win is fnv1a_batch4, which
//     puts four *independent* chains in four 64-bit lanes.
//   * NEON has no 64-bit lane multiply, so the NEON table vectorizes the
//     ∆ kernels (vcntq_u8) and keeps the multiply-bound hash kernels on
//     the scalar reference.
//
// The library depends on nothing but the standard library: font, simchar,
// and detect layer on top of it, never the other way around.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "kernels/glyph_panel.hpp"

namespace sham::kernels {

// --- Dispatch ------------------------------------------------------------

enum class Level {
  kScalar = 0,  // portable reference; always available
  kAvx2 = 1,    // x86-64 with AVX2 (checked via cpuid at startup)
  kNeon = 2,    // aarch64 ASIMD
};

[[nodiscard]] std::string_view level_name(Level level) noexcept;
[[nodiscard]] std::optional<Level> parse_level(std::string_view name) noexcept;

/// Levels the host can actually run, scalar first, ascending.
[[nodiscard]] std::vector<Level> supported_levels();

/// The level the dispatch table currently points at.
[[nodiscard]] Level active_level() noexcept;

/// Pin the dispatch table to `level` (for differential testing). Returns
/// false — leaving the table untouched — if the host cannot run it.
bool force_level(Level level) noexcept;

/// Undo force_level(): back to the startup pick (SHAM_KERNEL_LEVEL when
/// set to a runnable level, otherwise the best level the host supports).
void reset_level() noexcept;

/// RAII pin for tests: forces `level` if runnable, restores on scope exit.
class ScopedKernelLevel {
 public:
  explicit ScopedKernelLevel(Level level) noexcept
      : previous_{active_level()}, forced_{force_level(level)} {}
  ~ScopedKernelLevel() { force_level(previous_); }
  ScopedKernelLevel(const ScopedKernelLevel&) = delete;
  ScopedKernelLevel& operator=(const ScopedKernelLevel&) = delete;
  /// False when the host could not run the requested level.
  [[nodiscard]] bool forced() const noexcept { return forced_; }

 private:
  Level previous_;
  bool forced_;
};

// --- Kernels -------------------------------------------------------------

/// out[k] = popcount(query XOR panel glyph (begin + k)) for k in
/// [0, end - begin). `query` points at 16 words; requires end <= size().
void delta_batch_u1024(const std::uint64_t* query, const GlyphPanel& panel,
                       std::size_t begin, std::size_t end,
                       std::int32_t* out) noexcept;

/// Exact ∆ of two 16-word bitmaps (single-pair form of the batch kernel).
[[nodiscard]] int delta_u1024(const std::uint64_t* a,
                              const std::uint64_t* b) noexcept;

/// out[g] = splitmix64 chain over words [first_word, last_word) of panel
/// glyph g, seeded with kBlockHashSeed — one key per column, g < size().
/// Bit-identical to block_hash_u1024 on every level (tables built by the
/// batch are probed with single keys).
void block_hash_batch(const GlyphPanel& panel, unsigned first_word,
                      unsigned last_word, std::uint64_t* out) noexcept;

/// Scalar reference for one block key (probe side of the pigeonhole
/// tables). Deliberately not dispatched: it pins the hash definition.
[[nodiscard]] std::uint64_t block_hash_u1024(const std::uint64_t* words,
                                             unsigned first_word,
                                             unsigned last_word) noexcept;

inline constexpr std::uint64_t kBlockHashSeed = 0x9ae16a3b2f90404fULL;

/// FNV-1a over `n` u32 values (4 bytes each, little-endian order), chained
/// from `seed`. The skeleton index feeds [length, canonical stream].
[[nodiscard]] std::uint64_t fnv1a_span(std::uint64_t seed,
                                       const std::uint32_t* values,
                                       std::size_t n) noexcept;

/// Four independent fnv1a_span chains at once: out[c] =
/// fnv1a_span(seeds[c], values[c], lengths[c]). The AVX2 variant runs the
/// four chains in the four 64-bit lanes of one vector register.
void fnv1a_batch4(const std::uint32_t* const values[4],
                  const std::size_t lengths[4], const std::uint64_t seeds[4],
                  std::uint64_t out[4]) noexcept;

}  // namespace sham::kernels
