// Binary glyph bitmaps. The SimChar pipeline represents every character as
// a 32x32 black-and-white image (Section 3.3, Step I) and compares pairs
// with the pixel-difference metric ∆ (Step II).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "unicode/codepoint.hpp"

namespace sham::font {

/// A 32x32 binary image, one bit per pixel, packed row-major into sixteen
/// 64-bit words (two rows per word). Value semantics; trivially copyable.
class GlyphBitmap {
 public:
  static constexpr int kSize = 32;
  static constexpr int kWords = kSize * kSize / 64;

  constexpr GlyphBitmap() = default;

  [[nodiscard]] constexpr bool get(int x, int y) const noexcept {
    const int bit = y * kSize + x;
    return (words_[bit >> 6] >> (bit & 63)) & 1U;
  }

  constexpr void set(int x, int y, bool on = true) noexcept {
    const int bit = y * kSize + x;
    const std::uint64_t mask = 1ULL << (bit & 63);
    if (on) {
      words_[bit >> 6] |= mask;
    } else {
      words_[bit >> 6] &= ~mask;
    }
  }

  constexpr void flip(int x, int y) noexcept {
    const int bit = y * kSize + x;
    words_[bit >> 6] ^= 1ULL << (bit & 63);
  }

  /// Number of black pixels. Sparse glyphs (<10 black pixels) are dropped
  /// by SimChar Step III.
  [[nodiscard]] int popcount() const noexcept;

  [[nodiscard]] const std::array<std::uint64_t, kWords>& words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::array<std::uint64_t, kWords>& words() noexcept { return words_; }

  [[nodiscard]] bool operator==(const GlyphBitmap&) const = default;

  /// Multi-line ASCII rendering ('#' = black, '.' = white) for demos/tests.
  [[nodiscard]] std::string ascii_art() const;

  /// Nearest-neighbour upscale of a WxH sub-grid bitmap into 32x32
  /// (how 8x16 / 16x16 Unifont cells become 32x32 images, Step I).
  /// `src_get(x, y)` reads the source pixel. Throws std::invalid_argument
  /// if 32 is not divisible by w or h.
  template <typename GetPixel>
  static GlyphBitmap upscale(int w, int h, GetPixel src_get) {
    GlyphBitmap out;
    if (w <= 0 || h <= 0 || kSize % w != 0 || kSize % h != 0) {
      throw std::invalid_argument{"GlyphBitmap::upscale: bad source size"};
    }
    const int sx = kSize / w;
    const int sy = kSize / h;
    for (int y = 0; y < kSize; ++y) {
      for (int x = 0; x < kSize; ++x) {
        if (src_get(x / sx, y / sy)) out.set(x, y);
      }
    }
    return out;
  }

 private:
  std::array<std::uint64_t, kWords> words_{};
};

}  // namespace sham::font
