// Deterministic synthetic glyph source.
//
// The paper builds SimChar from the 52,457 IDNA-permitted characters that
// GNU Unifont covers. The Unifont data file is not available in this
// offline environment, so for scale experiments we synthesize a font:
// every covered code point gets a pseudo-random 32x32 "glyph" derived from
// a seed, and *planted homoglyph clusters* make designated groups of code
// points visually near-identical (pairwise ∆ ≤ the planted distance).
//
// Because the SimChar pipeline only consumes code-point -> bitmap, the
// synthetic font exercises exactly the same code path as a real font,
// while giving experiments a known ground truth: the builder records every
// planted pair, so tests can check that SimChar recovers precisely the
// planted structure (no false merges between random glyphs, whose expected
// pairwise ∆ is in the hundreds).
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "font/font_source.hpp"
#include "util/rng.hpp"

namespace sham::font {

class SyntheticFont final : public FontSource {
 public:
  // FontSource:
  [[nodiscard]] std::optional<GlyphBitmap> glyph(unicode::CodePoint cp) const override;
  [[nodiscard]] std::vector<unicode::CodePoint> coverage() const override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] std::size_t size() const noexcept { return glyphs_.size(); }

 private:
  friend class SyntheticFontBuilder;
  std::map<unicode::CodePoint, GlyphBitmap> glyphs_;
  std::string name_ = "synthetic";
};

/// One planted member of a homoglyph cluster.
struct PlantedMember {
  unicode::CodePoint cp = 0;
  int delta = 0;  // exact pixel distance from the cluster base glyph
};

/// A planted cluster: `base` plus members at controlled distances.
struct PlantedCluster {
  unicode::CodePoint base = 0;
  std::vector<PlantedMember> members;
};

class SyntheticFontBuilder {
 public:
  explicit SyntheticFontBuilder(std::uint64_t seed, std::string name = "synthetic");

  /// Cover every code point in [first, last] that satisfies `idna_only`
  /// filtering (when true, only IDNA-PVALID code points are covered). If
  /// more than `max_count` qualify, an evenly spaced subset is taken.
  /// Returns the number of code points added.
  std::size_t cover_range(unicode::CodePoint first, unicode::CodePoint last,
                          std::size_t max_count = SIZE_MAX, bool idna_only = true);

  /// Plant a homoglyph cluster. The base receives a fresh pseudo-random
  /// glyph; each member receives the base glyph with exactly `delta`
  /// pixels flipped. Re-planting a code point overwrites its glyph.
  void plant_cluster(unicode::CodePoint base,
                     const std::vector<PlantedMember>& members);

  /// Plant a sparse glyph with `pixels` black pixels (must be < 10 to be
  /// eliminated by SimChar Step III).
  void plant_sparse(unicode::CodePoint cp, int pixels);

  /// All clusters planted so far (ground truth for tests/experiments).
  [[nodiscard]] const std::vector<PlantedCluster>& planted() const noexcept {
    return clusters_;
  }

  [[nodiscard]] const std::vector<unicode::CodePoint>& sparse_planted() const noexcept {
    return sparse_;
  }

  [[nodiscard]] std::shared_ptr<SyntheticFont> build() const;

 private:
  GlyphBitmap random_glyph(util::Rng& rng) const;

  std::uint64_t seed_;
  std::shared_ptr<SyntheticFont> font_;
  std::vector<PlantedCluster> clusters_;
  std::vector<unicode::CodePoint> sparse_;
};

}  // namespace sham::font
