// Image-similarity metrics between glyph bitmaps (Section 3.3):
// ∆ (pixel difference count), MSE, PSNR, and SSIM for comparison.
#pragma once

#include "font/glyph.hpp"

namespace sham::font {

/// ∆ = Σ |I1(i,j) − I2(i,j)| — the number of differing pixels.
[[nodiscard]] int delta(const GlyphBitmap& a, const GlyphBitmap& b) noexcept;

/// ∆ with early exit: returns some value > `limit` as soon as the partial
/// sum exceeds `limit` (the exact value is unspecified beyond the limit).
[[nodiscard]] int delta_bounded(const GlyphBitmap& a, const GlyphBitmap& b,
                                int limit) noexcept;

/// MSE = ∆ / N²  (binary pixels, Section 3.3).
[[nodiscard]] double mse(const GlyphBitmap& a, const GlyphBitmap& b) noexcept;

/// PSNR = 20·log10(N) − 10·log10(∆); +inf when ∆ = 0.
[[nodiscard]] double psnr(const GlyphBitmap& a, const GlyphBitmap& b) noexcept;

/// Structural similarity index over the binary images (global statistics
/// variant with the standard k1=0.01, k2=0.03 stabilisers, dynamic range 1).
/// Provided for parity with the paper's discussion of SSIM; SimChar itself
/// uses ∆.
[[nodiscard]] double ssim(const GlyphBitmap& a, const GlyphBitmap& b) noexcept;

}  // namespace sham::font
