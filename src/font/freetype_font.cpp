#include "font/freetype_font.hpp"

#include <mutex>
#include <stdexcept>

#ifdef SHAM_HAVE_FREETYPE
#include <ft2build.h>
#include FT_FREETYPE_H
#endif

namespace sham::font {

bool freetype_available() noexcept {
#ifdef SHAM_HAVE_FREETYPE
  return true;
#else
  return false;
#endif
}

std::vector<std::string> default_font_paths() {
  return {
      "/usr/share/fonts/truetype/unifont/unifont.ttf",
      "/usr/share/fonts/truetype/dejavu/DejaVuSans.ttf",
      "/usr/share/fonts/truetype/dejavu/DejaVuSansMono.ttf",
      "/usr/share/fonts/truetype/noto/NotoSans-Regular.ttf",
  };
}

#ifdef SHAM_HAVE_FREETYPE

struct FreeTypeFont::Impl {
  FT_Library library = nullptr;
  FT_Face face = nullptr;
  // FreeType faces are not thread-safe; glyph() serializes on this.
  mutable std::mutex mutex;
};

FreeTypeFont::FreeTypeFont(const std::string& path) : impl_{new Impl} {
  if (FT_Init_FreeType(&impl_->library) != 0) {
    delete impl_;
    impl_ = nullptr;
    throw std::runtime_error{"FreeTypeFont: FT_Init_FreeType failed"};
  }
  if (FT_New_Face(impl_->library, path.c_str(), 0, &impl_->face) != 0) {
    FT_Done_FreeType(impl_->library);
    delete impl_;
    impl_ = nullptr;
    throw std::runtime_error{"FreeTypeFont: cannot open face: " + path};
  }
  // Render slightly under the cell so ascenders/descenders fit after the
  // glyph is centred into the 32x32 cell.
  FT_Set_Pixel_Sizes(impl_->face, 0, 24);
  name_ = "freetype:" + path;
}

FreeTypeFont::~FreeTypeFont() {
  if (impl_ != nullptr) {
    if (impl_->face != nullptr) FT_Done_Face(impl_->face);
    if (impl_->library != nullptr) FT_Done_FreeType(impl_->library);
    delete impl_;
  }
}

std::optional<GlyphBitmap> FreeTypeFont::glyph(unicode::CodePoint cp) const {
  std::lock_guard lock{impl_->mutex};
  const FT_UInt index = FT_Get_Char_Index(impl_->face, cp);
  if (index == 0) return std::nullopt;
  if (FT_Load_Glyph(impl_->face, index, FT_LOAD_RENDER | FT_LOAD_TARGET_MONO) != 0) {
    return std::nullopt;
  }
  const FT_Bitmap& bm = impl_->face->glyph->bitmap;
  if (bm.width == 0 || bm.rows == 0) return GlyphBitmap{};  // blank (e.g. space)
  if (bm.width > 32 || bm.rows > 32) return std::nullopt;   // does not fit the cell

  GlyphBitmap out;
  // Horizontally centre; vertically place on a common baseline (y = 26)
  // using bitmap_top so that 'o' and 'ó' land on the same rows.
  const int x0 = (32 - static_cast<int>(bm.width)) / 2;
  constexpr int kBaseline = 26;
  int y0 = kBaseline - impl_->face->glyph->bitmap_top;
  if (y0 < 0) y0 = 0;
  if (y0 + static_cast<int>(bm.rows) > 32) y0 = 32 - static_cast<int>(bm.rows);

  for (unsigned y = 0; y < bm.rows; ++y) {
    const unsigned char* row = bm.buffer + static_cast<std::size_t>(y) * bm.pitch;
    for (unsigned x = 0; x < bm.width; ++x) {
      if ((row[x >> 3] >> (7 - (x & 7))) & 1) {
        out.set(x0 + static_cast<int>(x), y0 + static_cast<int>(y));
      }
    }
  }
  return out;
}

std::vector<unicode::CodePoint> FreeTypeFont::coverage() const {
  std::lock_guard lock{impl_->mutex};
  std::vector<unicode::CodePoint> out;
  FT_UInt gindex = 0;
  FT_ULong cp = FT_Get_First_Char(impl_->face, &gindex);
  while (gindex != 0) {
    if (cp <= unicode::kMaxCodePoint) out.push_back(static_cast<unicode::CodePoint>(cp));
    cp = FT_Get_Next_Char(impl_->face, cp, &gindex);
  }
  return out;
}

#else  // !SHAM_HAVE_FREETYPE

struct FreeTypeFont::Impl {};

FreeTypeFont::FreeTypeFont(const std::string&) {
  throw std::runtime_error{"FreeTypeFont: built without FreeType support"};
}

FreeTypeFont::~FreeTypeFont() = default;

std::optional<GlyphBitmap> FreeTypeFont::glyph(unicode::CodePoint) const {
  return std::nullopt;
}

std::vector<unicode::CodePoint> FreeTypeFont::coverage() const { return {}; }

#endif

FontSourcePtr FreeTypeFont::open_system_font() {
  if (!freetype_available()) return nullptr;
  for (const auto& path : default_font_paths()) {
    try {
      return std::make_shared<FreeTypeFont>(path);
    } catch (const std::exception&) {
      continue;
    }
  }
  return nullptr;
}

}  // namespace sham::font
