#include "font/paper_font.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "unicode/category.hpp"
#include "unicode/confusables.hpp"
#include "unicode/idna_properties.hpp"

namespace sham::font {

namespace {

// Lowercase donor pool: IDNA-permitted lowercase letters from the scripts
// that realistic Latin homoglyphs come from (accented Latin, IPA, Greek,
// Cyrillic, Armenian, Georgian, Cherokee small letters, Latin Ext C/D/E).
std::vector<unicode::CodePoint> lowercase_donor_pool() {
  static const std::vector<std::pair<unicode::CodePoint, unicode::CodePoint>> ranges{
      {0x00E0, 0x00FF}, {0x0100, 0x017F}, {0x0180, 0x024F}, {0x0250, 0x02AF},
      {0x03AC, 0x03CE}, {0x0430, 0x045F}, {0x0460, 0x0481}, {0x048A, 0x04FF},
      {0x0500, 0x052F}, {0x0561, 0x0586}, {0x10D0, 0x10FA}, {0x13F8, 0x13FD},
      {0x1E00, 0x1EFF}, {0x2C61, 0x2C7B}, {0xA723, 0xA78C}, {0xA791, 0xA7BF},
      {0xAB30, 0xAB5A}, {0xAB70, 0xABBF},
  };
  std::vector<unicode::CodePoint> pool;
  for (const auto& [first, last] : ranges) {
    for (unicode::CodePoint cp = first; cp <= last; ++cp) {
      if (unicode::general_category(cp) == unicode::GeneralCategory::kLl &&
          unicode::is_idna_permitted(cp)) {
        pool.push_back(cp);
      }
    }
  }
  return pool;
}

struct BlockClusterSpec {
  unicode::CodePoint range_start;
  unicode::CodePoint stride;  // spacing between consecutive cluster bases
  int clusters;
  int members_per_cluster;
};

}  // namespace

const std::vector<std::pair<char, int>>& table3_simchar_counts() {
  // Paper Table 3, SimChar column: homoglyph counts per lowercase letter.
  static const std::vector<std::pair<char, int>> counts{
      {'o', 40}, {'e', 26}, {'n', 24}, {'w', 20}, {'c', 19}, {'l', 18},
      {'u', 18}, {'h', 17}, {'i', 16}, {'s', 14}, {'r', 14}, {'a', 14},
      {'k', 13}, {'t', 13}, {'z', 12}, {'d', 10}, {'y', 9},  {'b', 8},
      {'f', 8},  {'m', 8},  {'g', 7},  {'j', 7},  {'p', 7},  {'x', 6},
      {'q', 2},  {'v', 1},
  };
  return counts;
}

PaperFont make_paper_font(const PaperFontConfig& config) {
  if (config.scale <= 0.0) throw std::invalid_argument{"make_paper_font: scale <= 0"};
  SyntheticFontBuilder builder{config.seed, "synthetic-paper-scale"};

  // --- Filler coverage: broad PVALID ranges, capped per block to keep the
  // default build interactive. Proportions follow Unifont's BMP coverage
  // (CJK/Hangul dominate).
  const auto cap = [&](double base) {
    return static_cast<std::size_t>(base * config.scale);
  };
  builder.cover_range(0x0020, 0x024F);                 // Latin repertoire
  builder.cover_range(0x0250, 0x02AF);                 // IPA
  builder.cover_range(0x0370, 0x03FF);                 // Greek
  builder.cover_range(0x0400, 0x052F);                 // Cyrillic
  builder.cover_range(0x0530, 0x058F);                 // Armenian
  builder.cover_range(0x05D0, 0x05EA);                 // Hebrew
  builder.cover_range(0x0620, 0x06FF, cap(260));       // Arabic
  builder.cover_range(0x0900, 0x0DFF, cap(600));       // Indic blocks
  builder.cover_range(0x0E01, 0x0EFF, cap(140));       // Thai/Lao
  builder.cover_range(0x10D0, 0x10FA);                 // Georgian
  builder.cover_range(0x1200, 0x137F, cap(320));       // Ethiopic
  builder.cover_range(0x13A0, 0x13FD, cap(90));        // Cherokee
  builder.cover_range(0x1400, 0x167F, cap(500));       // Canadian Aboriginal
  builder.cover_range(0x1780, 0x17B3, cap(60));        // Khmer
  builder.cover_range(0x1E00, 0x1FFF, cap(300));       // Latin Add./Greek Ext.
  builder.cover_range(0x3041, 0x30FE, cap(180));       // Hiragana/Katakana
  builder.cover_range(0x3400, 0x4DBF, cap(900));       // CJK Ext A
  builder.cover_range(0x4E00, 0x9FFF, cap(2600));      // CJK Unified
  builder.cover_range(0xA000, 0xA48F, cap(380));       // Yi
  builder.cover_range(0xA4D0, 0xA4F7);                 // Lisu
  builder.cover_range(0xA500, 0xA63F, cap(200));       // Vai
  builder.cover_range(0xAC00, 0xD7A3, cap(5200));      // Hangul Syllables
  builder.cover_range(0x1E900, 0x1E943, cap(40));      // Adlam (SMP presence)

  // --- Table 3: per-letter homoglyph members with ∆ ≤ 4, plus a ∆ = 5..8
  // ladder per letter for the threshold experiments.
  auto pool = lowercase_donor_pool();
  // Letters themselves cannot be donors.
  std::erase_if(pool, [](unicode::CodePoint cp) { return cp < 0x80; });
  std::size_t next_donor = 0;
  auto take_donor = [&]() {
    if (next_donor >= pool.size()) {
      throw std::runtime_error{"make_paper_font: donor pool exhausted"};
    }
    return pool[next_donor++];
  };

  // Pinned donors: characters that named experiments rely on. The Table 11
  // case-study homographs (gmaıl, döviz, yàhoo, ...) need these specific
  // accented characters to be SimChar homoglyphs of their base letters,
  // and a few UC members are pinned so SimChar ∩ UC is nonempty (Table 1).
  static const std::unordered_map<char, std::vector<unicode::CodePoint>> kPinned{
      {'a', {0x00E0, 0x00E4, 0x0430}},  // à ä + Cyrillic а (UC overlap)
      {'e', {0x00EA, 0x00E9}},          // ê é
      {'i', {0x0131, 0x0456}},          // dotless ı + Cyrillic і (UC overlap)
      {'l', {0x013A}},                  // ĺ
      {'o', {0x00F6, 0x00F3, 0x03BF}},  // ö ó + Greek ο (UC overlap)
      {'u', {0x00FA}},                  // ú
      {'g', {0x0261}},                  // ɡ (UC overlap)
  };
  std::unordered_set<unicode::CodePoint> pinned_set;
  for (const auto& [letter, cps] : kPinned) {
    pinned_set.insert(cps.begin(), cps.end());
  }

  // UC's Latin-lookalike characters are genuinely confusable but, per the
  // paper's Figure 10/11 finding, *less* confusable than SimChar pairs on
  // average. Render them just above the SimChar threshold (∆ = 5-6) so
  // they stay out of SimChar while remaining visually close — except the
  // pinned overlap members above, which land in both databases.
  std::unordered_map<char, std::vector<unicode::CodePoint>> uc_members;
  {
    int alt = 0;
    for (const auto& [source, proto] : unicode::ConfusablesDb::embedded()
                                           .single_char_pairs()) {
      if (proto < 'a' || proto > 'z') continue;
      if (!unicode::is_idna_permitted(source)) continue;
      if (pinned_set.contains(source)) continue;
      uc_members[static_cast<char>(proto)].push_back(source);
      pinned_set.insert(source);  // reserve: not reusable as a generic donor
      (void)alt;
    }
  }
  std::erase_if(pool, [&](unicode::CodePoint cp) { return pinned_set.contains(cp); });

  // ∆ assignment cycle for the ≤4 members: conservative-threshold-heavy,
  // with some exact duplicates (∆ = 0) as Unifont genuinely has.
  static constexpr int kDeltaCycle[] = {4, 3, 4, 2, 4, 3, 1, 4, 2, 3, 4, 0};
  for (const auto& [letter, count] : table3_simchar_counts()) {
    std::vector<PlantedMember> members;
    members.reserve(static_cast<std::size_t>(count) + 4u * config.ladder_members_per_delta);
    int planted_count = 0;
    if (const auto pin = kPinned.find(letter); pin != kPinned.end()) {
      for (const auto cp : pin->second) {
        members.push_back({cp, 1 + planted_count % 4});
        ++planted_count;
      }
    }
    for (int i = planted_count; i < count; ++i) {
      members.push_back({take_donor(), kDeltaCycle[i % std::size(kDeltaCycle)]});
    }
    if (const auto uc_it = uc_members.find(letter); uc_it != uc_members.end()) {
      int alt = 0;
      for (const auto cp : uc_it->second) {
        members.push_back({cp, 5 + (alt++ % 2)});
      }
    }
    for (int d = 5; d <= 8; ++d) {
      for (int i = 0; i < config.ladder_members_per_delta; ++i) {
        members.push_back({take_donor(), d});
      }
    }
    builder.plant_cluster(static_cast<unicode::CodePoint>(letter), members);
  }

  // --- Block-level clusters (Table 4 shape: Hangul >> CJK ~ CA > Vai >
  // Arabic). Bases are spaced by `stride` so clusters never overlap.
  const BlockClusterSpec block_specs[] = {
      {0xAC10, 11, static_cast<int>(330 * config.scale) + 60, 2},  // Hangul
      {0x4E50, 23, static_cast<int>(22 * config.scale) + 2, 2},   // CJK
      {0x1410, 9, static_cast<int>(20 * config.scale) + 2, 2},    // Canadian Aboriginal
      {0xA510, 7, static_cast<int>(7 * config.scale) + 1, 2},     // Vai
      {0x0621, 5, static_cast<int>(5 * config.scale) + 1, 2},     // Arabic
  };
  for (const auto& spec : block_specs) {
    unicode::CodePoint cp = spec.range_start;
    for (int c = 0; c < spec.clusters; ++c, cp += spec.stride) {
      // Skip forward to a PVALID base so the cluster survives the IDNA
      // intersection in the SimChar builder.
      while (!unicode::is_idna_permitted(cp)) ++cp;
      std::vector<PlantedMember> members;
      for (int m = 1; m <= spec.members_per_cluster; ++m) {
        unicode::CodePoint mcp = cp + static_cast<unicode::CodePoint>(m);
        while (!unicode::is_idna_permitted(mcp)) ++mcp;
        members.push_back({mcp, 1 + (m + c) % 4});
      }
      builder.plant_cluster(cp, members);
    }
  }

  // --- Sparse characters (Figure 7 examples plus combining-mark ranges).
  for (const unicode::CodePoint cp :
       {0x1BE7u, 0x2DF5u, 0xA953u, 0xABECu, 0x0E47u, 0x0E48u, 0x0E49u, 0x1DC0u,
        0x1DC1u, 0x1DC2u, 0x0ECAu, 0x0302u, 0x0303u, 0x0FB5u}) {
    if (unicode::is_idna_permitted(cp)) {
      builder.plant_sparse(cp, 4 + static_cast<int>(cp % 5));
    }
  }

  PaperFont result;
  result.font = builder.build();
  result.clusters = builder.planted();
  result.sparse = builder.sparse_planted();
  return result;
}

}  // namespace sham::font
