// Abstract glyph source. SimChar construction is font-agnostic (Section
// 3.3: "the following procedure can easily be extended to other font
// sets") — it consumes any FontSource.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "font/glyph.hpp"
#include "unicode/codepoint.hpp"

namespace sham::font {

class FontSource {
 public:
  virtual ~FontSource() = default;

  /// Render the glyph of `cp` as a 32x32 binary bitmap, or nullopt if the
  /// font does not cover `cp`.
  [[nodiscard]] virtual std::optional<GlyphBitmap> glyph(unicode::CodePoint cp) const = 0;

  /// All code points this font covers, ascending.
  [[nodiscard]] virtual std::vector<unicode::CodePoint> coverage() const = 0;

  /// Human-readable name (reported in experiment output).
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] bool covers(unicode::CodePoint cp) const { return glyph(cp).has_value(); }
};

using FontSourcePtr = std::shared_ptr<const FontSource>;

}  // namespace sham::font
