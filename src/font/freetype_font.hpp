// FreeType-backed glyph source: rasterizes a real scalable font (e.g. the
// system DejaVu Sans) into the 32x32 binary bitmaps that SimChar consumes.
// This is the "other font sets" extension the paper names as future work
// (Section 7.1), and doubles as our stand-in for GNU Unifont when the
// Unifont .hex data file is not available (see DESIGN.md section 2).
#pragma once

#include <string>
#include <vector>

#include "font/font_source.hpp"

namespace sham::font {

/// True if this build has FreeType support compiled in.
[[nodiscard]] bool freetype_available() noexcept;

/// Well-known system font paths to probe, most-preferred first.
[[nodiscard]] std::vector<std::string> default_font_paths();

class FreeTypeFont final : public FontSource {
 public:
  /// Open `path` and prepare to render at a 32px nominal size. Throws
  /// std::runtime_error if FreeType is unavailable or the face fails to
  /// load.
  explicit FreeTypeFont(const std::string& path);
  ~FreeTypeFont() override;

  FreeTypeFont(const FreeTypeFont&) = delete;
  FreeTypeFont& operator=(const FreeTypeFont&) = delete;

  /// Load the first available font from default_font_paths(); returns
  /// nullptr when none can be opened (callers fall back to SyntheticFont).
  static FontSourcePtr open_system_font();

  // FontSource:
  [[nodiscard]] std::optional<GlyphBitmap> glyph(unicode::CodePoint cp) const override;
  [[nodiscard]] std::vector<unicode::CodePoint> coverage() const override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  struct Impl;
  Impl* impl_ = nullptr;
  std::string name_;
};

}  // namespace sham::font
