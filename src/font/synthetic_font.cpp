#include "font/synthetic_font.hpp"

#include <stdexcept>

#include "unicode/idna_properties.hpp"

namespace sham::font {

std::optional<GlyphBitmap> SyntheticFont::glyph(unicode::CodePoint cp) const {
  const auto it = glyphs_.find(cp);
  if (it == glyphs_.end()) return std::nullopt;
  return it->second;
}

std::vector<unicode::CodePoint> SyntheticFont::coverage() const {
  std::vector<unicode::CodePoint> out;
  out.reserve(glyphs_.size());
  for (const auto& [cp, g] : glyphs_) out.push_back(cp);
  return out;
}

SyntheticFontBuilder::SyntheticFontBuilder(std::uint64_t seed, std::string name)
    : seed_{seed}, font_{std::make_shared<SyntheticFont>()} {
  font_->name_ = std::move(name);
}

GlyphBitmap SyntheticFontBuilder::random_glyph(util::Rng& rng) const {
  // Draw inside a 2-pixel margin with ~22% ink, giving ~170 black pixels —
  // dense enough that two independent glyphs differ by hundreds of pixels.
  GlyphBitmap g;
  for (int y = 2; y < 30; ++y) {
    for (int x = 2; x < 30; ++x) {
      if (rng.bernoulli(0.22)) g.set(x, y);
    }
  }
  return g;
}

std::size_t SyntheticFontBuilder::cover_range(unicode::CodePoint first,
                                              unicode::CodePoint last,
                                              std::size_t max_count, bool idna_only) {
  if (first > last) throw std::invalid_argument{"cover_range: first > last"};
  std::vector<unicode::CodePoint> candidates;
  for (unicode::CodePoint cp = first; cp <= last && cp >= first; ++cp) {
    if (!idna_only || unicode::is_idna_permitted(cp)) candidates.push_back(cp);
  }
  std::size_t added = 0;
  const std::size_t take = std::min(max_count, candidates.size());
  if (take == 0) return 0;
  // Evenly spaced subset keeps the coverage deterministic and spread out.
  const double step = static_cast<double>(candidates.size()) / static_cast<double>(take);
  for (std::size_t i = 0; i < take; ++i) {
    const auto cp = candidates[static_cast<std::size_t>(i * step)];
    if (font_->glyphs_.contains(cp)) continue;
    util::Rng rng{seed_ ^ (0x9e3779b97f4a7c15ULL * (cp + 1))};
    font_->glyphs_[cp] = random_glyph(rng);
    ++added;
  }
  return added;
}

void SyntheticFontBuilder::plant_cluster(unicode::CodePoint base,
                                         const std::vector<PlantedMember>& members) {
  util::Rng rng{seed_ ^ (0xbf58476d1ce4e5b9ULL * (base + 1))};
  const GlyphBitmap base_glyph = random_glyph(rng);
  font_->glyphs_[base] = base_glyph;

  PlantedCluster record;
  record.base = base;
  for (const auto& member : members) {
    if (member.delta < 0) throw std::invalid_argument{"plant_cluster: negative delta"};
    GlyphBitmap g = base_glyph;
    // Flip exactly `delta` distinct pixels inside the drawing box.
    util::Rng mrng{seed_ ^ (0x94d049bb133111ebULL * (member.cp + 1))};
    int flipped = 0;
    while (flipped < member.delta) {
      const int x = 2 + static_cast<int>(mrng.below(28));
      const int y = 2 + static_cast<int>(mrng.below(28));
      // Avoid flipping the same pixel twice (which would undo the flip).
      if (g.get(x, y) != base_glyph.get(x, y)) continue;
      g.flip(x, y);
      ++flipped;
    }
    font_->glyphs_[member.cp] = g;
    record.members.push_back(member);
  }
  clusters_.push_back(std::move(record));
}

void SyntheticFontBuilder::plant_sparse(unicode::CodePoint cp, int pixels) {
  if (pixels < 0 || pixels >= 10) {
    throw std::invalid_argument{"plant_sparse: pixel count must be in [0, 10)"};
  }
  GlyphBitmap g;
  util::Rng rng{seed_ ^ (0x2545f4914f6cdd1dULL * (cp + 1))};
  int placed = 0;
  while (placed < pixels) {
    const int x = static_cast<int>(rng.below(32));
    const int y = static_cast<int>(rng.below(32));
    if (g.get(x, y)) continue;
    g.set(x, y);
    ++placed;
  }
  font_->glyphs_[cp] = g;
  sparse_.push_back(cp);
}

std::shared_ptr<SyntheticFont> SyntheticFontBuilder::build() const {
  // Return a copy so the builder can keep being amended without mutating
  // previously built fonts.
  return std::make_shared<SyntheticFont>(*font_);
}

}  // namespace sham::font
