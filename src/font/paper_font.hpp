// The "paper-scale" synthetic font: a SyntheticFont workload whose planted
// homoglyph structure mirrors the shape of the paper's SimChar findings —
// per-Latin-letter homoglyph counts following Table 3, block composition
// following Table 4 (Hangul >> CJK ~ Canadian Aboriginal > Vai > Arabic),
// a ∆ = 0..8 ladder per letter for the threshold study (Figures 6 and 9),
// and sparse characters for Step III (Figure 7).
#pragma once

#include <cstdint>
#include <vector>

#include "font/synthetic_font.hpp"

namespace sham::font {

struct PaperFontConfig {
  std::uint64_t seed = 42;
  /// Scales the filler coverage (total characters rendered) — the paper's
  /// full repertoire is 52,457 characters; scale 1.0 targets ~12,000 for
  /// sub-minute experiment turnaround. Cost benches sweep this upward.
  double scale = 1.0;
  /// Members planted per exact ∆ in {5..8} per letter, feeding Figure 9's
  /// above-threshold samples.
  int ladder_members_per_delta = 3;
};

struct PaperFont {
  FontSourcePtr font;
  std::vector<PlantedCluster> clusters;       // ground truth
  std::vector<unicode::CodePoint> sparse;     // planted sparse characters
};

/// Number of SimChar homoglyphs of each Basic Latin lowercase letter that
/// the plan plants with ∆ ≤ 4 (the paper's Table 3, SimChar column).
[[nodiscard]] const std::vector<std::pair<char, int>>& table3_simchar_counts();

[[nodiscard]] PaperFont make_paper_font(const PaperFontConfig& config = {});

}  // namespace sham::font
