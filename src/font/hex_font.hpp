// GNU Unifont .hex format: one glyph per line, "XXXX:<hex digits>", where
// the digit count encodes the cell (32 digits = 8x16, 64 digits = 16x16).
// This is the font format the paper used for SimChar (GNU Unifont Glyphs).
#pragma once

#include <array>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "font/font_source.hpp"

namespace sham::font {

class HexFont final : public FontSource {
 public:
  /// Parse .hex text. Malformed lines throw std::invalid_argument with the
  /// line number; blank lines and '#' comments are skipped.
  static HexFont parse(std::string_view text, std::string name = "unifont.hex");

  /// Load a .hex file from disk; throws std::runtime_error if unreadable.
  static HexFont load(const std::string& path);

  HexFont() = default;

  /// Add/replace one glyph from its raw cell rows. `wide` selects the
  /// 16x16 cell (otherwise 8x16); rows are the raw row bit patterns,
  /// MSB = leftmost pixel.
  void add_glyph(unicode::CodePoint cp, bool wide,
                 const std::vector<std::uint32_t>& rows);

  /// Serialize back to .hex text (round-trips with parse()).
  [[nodiscard]] std::string serialize() const;

  // FontSource:
  [[nodiscard]] std::optional<GlyphBitmap> glyph(unicode::CodePoint cp) const override;
  [[nodiscard]] std::vector<unicode::CodePoint> coverage() const override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] std::size_t size() const noexcept { return glyphs_.size(); }

 private:
  struct Cell {
    bool wide = false;
    std::array<std::uint16_t, 16> rows{};  // 8-wide uses the high byte
  };

  std::map<unicode::CodePoint, Cell> glyphs_;
  std::string name_ = "hexfont";
};

}  // namespace sham::font
