#include "font/metrics.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "kernels/kernels.hpp"

namespace sham::font {

static_assert(static_cast<std::size_t>(GlyphBitmap::kWords) ==
              kernels::kGlyphWords);

int delta(const GlyphBitmap& a, const GlyphBitmap& b) noexcept {
  return kernels::delta_u1024(a.words().data(), b.words().data());
}

// Stays scalar: the early-exit return value past `limit` is unspecified
// but must not vary with the kernel dispatch level.
int delta_bounded(const GlyphBitmap& a, const GlyphBitmap& b, int limit) noexcept {
  int sum = 0;
  for (int w = 0; w < GlyphBitmap::kWords; ++w) {
    sum += std::popcount(a.words()[w] ^ b.words()[w]);
    if (sum > limit) return sum;
  }
  return sum;
}

double mse(const GlyphBitmap& a, const GlyphBitmap& b) noexcept {
  constexpr double n2 = GlyphBitmap::kSize * GlyphBitmap::kSize;
  return delta(a, b) / n2;
}

double psnr(const GlyphBitmap& a, const GlyphBitmap& b) noexcept {
  const int d = delta(a, b);
  if (d == 0) return std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(GlyphBitmap::kSize) - 10.0 * std::log10(static_cast<double>(d));
}

double ssim(const GlyphBitmap& a, const GlyphBitmap& b) noexcept {
  constexpr double n = GlyphBitmap::kSize * GlyphBitmap::kSize;
  constexpr double c1 = 0.01 * 0.01;  // (k1·L)², L = 1 for binary images
  constexpr double c2 = 0.03 * 0.03;

  const double pa = a.popcount();
  const double pb = b.popcount();
  const double mu_a = pa / n;
  const double mu_b = pb / n;
  // For 0/1 pixels: E[x²] = E[x], so var = μ(1-μ); covariance from the
  // overlap count (pixels black in both).
  int both = 0;
  for (int w = 0; w < GlyphBitmap::kWords; ++w) {
    both += std::popcount(a.words()[w] & b.words()[w]);
  }
  const double var_a = mu_a * (1.0 - mu_a);
  const double var_b = mu_b * (1.0 - mu_b);
  const double cov = both / n - mu_a * mu_b;

  return ((2 * mu_a * mu_b + c1) * (2 * cov + c2)) /
         ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
}

}  // namespace sham::font
