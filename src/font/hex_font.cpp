#include "font/hex_font.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace sham::font {

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

HexFont HexFont::parse(std::string_view text, std::string name) {
  HexFont font;
  font.name_ = std::move(name);
  std::size_t line_no = 0;
  for (const auto raw_line : util::split(text, '\n')) {
    ++line_no;
    const auto line = util::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      throw std::invalid_argument{".hex line " + std::to_string(line_no) +
                                  ": missing ':'"};
    }
    const auto cp = util::parse_hex_codepoint(line.substr(0, colon));
    const auto bits = line.substr(colon + 1);

    Cell cell;
    if (bits.size() == 32) {
      cell.wide = false;
    } else if (bits.size() == 64) {
      cell.wide = true;
    } else {
      throw std::invalid_argument{".hex line " + std::to_string(line_no) +
                                  ": expected 32 or 64 hex digits, got " +
                                  std::to_string(bits.size())};
    }
    const std::size_t digits_per_row = cell.wide ? 4 : 2;
    for (std::size_t row = 0; row < 16; ++row) {
      std::uint16_t value = 0;
      for (std::size_t d = 0; d < digits_per_row; ++d) {
        const int v = hex_value(bits[row * digits_per_row + d]);
        if (v < 0) {
          throw std::invalid_argument{".hex line " + std::to_string(line_no) +
                                      ": bad hex digit"};
        }
        value = static_cast<std::uint16_t>((value << 4) | v);
      }
      if (!cell.wide) value = static_cast<std::uint16_t>(value << 8);  // left-align
      cell.rows[row] = value;
    }
    font.glyphs_[cp] = cell;
  }
  return font;
}

HexFont HexFont::load(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"HexFont::load: cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), path);
}

void HexFont::add_glyph(unicode::CodePoint cp, bool wide,
                        const std::vector<std::uint32_t>& rows) {
  if (rows.size() != 16) {
    throw std::invalid_argument{"HexFont::add_glyph: expected 16 rows"};
  }
  Cell cell;
  cell.wide = wide;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t max = wide ? 0xFFFFu : 0xFFu;
    if (rows[i] > max) {
      throw std::invalid_argument{"HexFont::add_glyph: row value out of range"};
    }
    cell.rows[i] = static_cast<std::uint16_t>(wide ? rows[i] : rows[i] << 8);
  }
  glyphs_[cp] = cell;
}

std::string HexFont::serialize() const {
  static constexpr char digits[] = "0123456789ABCDEF";
  std::string out;
  for (const auto& [cp, cell] : glyphs_) {
    std::string hex;
    std::uint32_t v = cp;
    while (v != 0) {
      hex.insert(hex.begin(), digits[v & 0xF]);
      v >>= 4;
    }
    while (hex.size() < 4) hex.insert(hex.begin(), '0');
    out += hex;
    out += ':';
    for (int row = 0; row < 16; ++row) {
      const std::uint16_t bits = cell.wide ? cell.rows[row]
                                           : static_cast<std::uint16_t>(cell.rows[row] >> 8);
      const int digit_count = cell.wide ? 4 : 2;
      for (int d = digit_count - 1; d >= 0; --d) {
        out += digits[(bits >> (4 * d)) & 0xF];
      }
    }
    out += '\n';
  }
  return out;
}

std::optional<GlyphBitmap> HexFont::glyph(unicode::CodePoint cp) const {
  const auto it = glyphs_.find(cp);
  if (it == glyphs_.end()) return std::nullopt;
  const Cell& cell = it->second;
  const int width = cell.wide ? 16 : 8;
  return GlyphBitmap::upscale(width, 16, [&](int x, int y) {
    const std::uint16_t row = cell.rows[y];
    const int shift = cell.wide ? 15 - x : 15 - x;  // 8-wide rows are left-aligned
    return ((row >> shift) & 1) != 0;
  });
}

std::vector<unicode::CodePoint> HexFont::coverage() const {
  std::vector<unicode::CodePoint> out;
  out.reserve(glyphs_.size());
  for (const auto& [cp, cell] : glyphs_) out.push_back(cp);
  return out;
}

}  // namespace sham::font
