#include "font/glyph.hpp"

#include <bit>

namespace sham::font {

int GlyphBitmap::popcount() const noexcept {
  int sum = 0;
  for (const auto w : words_) sum += std::popcount(w);
  return sum;
}

std::string GlyphBitmap::ascii_art() const {
  std::string out;
  out.reserve((kSize + 1) * kSize);
  for (int y = 0; y < kSize; ++y) {
    for (int x = 0; x < kSize; ++x) out += get(x, y) ? '#' : '.';
    out += '\n';
  }
  return out;
}

}  // namespace sham::font
