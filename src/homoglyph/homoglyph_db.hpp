// The homoglyph database used by the detector: the union of UC
// (confusables.txt) and SimChar, with per-pair provenance (Figure 2 of the
// paper shows both sub-databases feeding the matcher). Also implements the
// "reverting to original domains" analysis of Section 6.4.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simchar/simchar.hpp"
#include "unicode/confusables.hpp"

namespace sham::homoglyph {

enum class Source : std::uint8_t {
  kUc = 1,
  kSimChar = 2,
  kBoth = 3,
};

/// Which sub-databases to consult — the measurement study compares UC-only
/// (the prior approach of Quinkert et al.), SimChar-only, and the union
/// (Tables 8 and 14).
struct DbConfig {
  bool use_uc = true;
  bool use_simchar = true;
  /// Keep only pairs whose characters are all IDNA-PVALID (UC lists many
  /// characters that cannot appear in registered IDNs).
  bool idna_only = true;
};

class HomoglyphDb {
 public:
  HomoglyphDb();

  /// Compose from a SimChar database and a confusables database.
  HomoglyphDb(const simchar::SimCharDb& simchar_db,
              const unicode::ConfusablesDb& uc_db, const DbConfig& config = {});

  /// True if {a, b} are listed as homoglyphs (symmetric, irreflexive).
  [[nodiscard]] bool are_homoglyphs(unicode::CodePoint a, unicode::CodePoint b) const;

  /// Provenance of the pair, if listed.
  [[nodiscard]] std::optional<Source> source_of(unicode::CodePoint a,
                                                unicode::CodePoint b) const;

  [[nodiscard]] std::vector<unicode::CodePoint> homoglyphs_of(unicode::CodePoint cp) const;

  /// Confusable-closure canonical map: the representative (smallest code
  /// point) of the connected component containing `cp` in the pair graph,
  /// or `cp` itself when it participates in no pair. The closure is the
  /// transitive hull of the (non-transitive) homoglyph relation, so
  /// canonical(a) == canonical(b) is a necessary — NOT sufficient —
  /// condition for {a, b} being a listed pair; candidate sets built on it
  /// over-approximate and must be re-verified with source_of()/
  /// are_homoglyphs(). Code points below U+0100 hit a dense flat array
  /// (copied out of the artifact at adoption time, so the fast path is
  /// identical in both storage modes).
  [[nodiscard]] unicode::CodePoint canonical(unicode::CodePoint cp) const noexcept {
    if (cp < kDenseCanonical) return canonical_latin1_[cp];
    if (view_) {
      const auto it = std::lower_bound(v_canon_keys_.begin(), v_canon_keys_.end(), cp);
      if (it == v_canon_keys_.end() || *it != cp) return cp;
      return v_canon_reps_[static_cast<std::size_t>(it - v_canon_keys_.begin())];
    }
    const auto it = canonical_.find(cp);
    return it == canonical_.end() ? cp : it->second;
  }

  /// Number of non-singleton confusable-closure components.
  [[nodiscard]] std::size_t canonical_class_count() const noexcept {
    return canonical_classes_;
  }

  /// Pair counts by provenance (for Table 1-style set arithmetic).
  [[nodiscard]] std::size_t pair_count() const noexcept {
    return view_ ? v_pair_keys_.size() : pair_source_.size();
  }
  [[nodiscard]] std::size_t pair_count(Source source) const;
  [[nodiscard]] std::size_t character_count() const noexcept {
    return view_ ? v_adj_cps_.size() : adjacency_.size();
  }

  // --- Incremental maintenance (Section 4.2: the DB evolves as Unicode
  // adds glyphs) -------------------------------------------------------
  //
  // The database carries a monotonically increasing *generation* counter.
  // Every mutating update bumps it and records which code points changed
  // their confusable-closure canonical representative, so index structures
  // built over canonical() (detect::SkeletonIndex) can rehash exactly the
  // affected union-find components instead of rebuilding from scratch.

  /// Outcome of one apply_update()/update_with_new_characters() call.
  struct UpdateResult {
    std::size_t pairs_added = 0;      // brand-new pairs inserted
    std::size_t sources_widened = 0;  // existing pairs that gained a provenance bit
    /// Code points whose canonical() representative moved (sorted, unique).
    /// Empty when every new pair landed inside an existing component.
    std::vector<unicode::CodePoint> canonical_changed;
  };

  /// Add pairs in place (pair graph, adjacency, and the canonical map are
  /// maintained incrementally — no full finalize()). Bumps generation()
  /// iff the update changed anything (new pair or widened provenance).
  UpdateResult apply_update(std::span<const simchar::HomoglyphPair> pairs,
                            Source source = Source::kSimChar);

  /// Incorporate SimChar growth: add every pair of `updated` not already
  /// listed here (the shape produced by simchar::update_with_new_characters
  /// when the Unicode standard adds characters). Honors the idna_only
  /// filter this database was constructed with.
  UpdateResult update_with_new_characters(const simchar::SimCharDb& updated);

  /// Mutation counter: 0 for a freshly constructed/parsed database, +1 per
  /// effective apply_update()/update_with_new_characters() call.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

  /// Code points whose canonical() representative changed after generation
  /// `since` (exclusive), sorted and unique. Returns std::nullopt when the
  /// change log cannot answer (unknown generation), in which case callers
  /// must fall back to a full rebuild of whatever they derived.
  [[nodiscard]] std::optional<std::vector<unicode::CodePoint>> canonical_changes_since(
      std::uint64_t since) const;

  /// Replace every non-ASCII character that has a Basic Latin (LDH)
  /// homoglyph with that homoglyph. Returns std::nullopt if any non-ASCII
  /// character has no LDH homoglyph — i.e. the string cannot be an IDN
  /// homograph of an ASCII domain under this database.
  [[nodiscard]] std::optional<unicode::U32String> revert_to_ascii(
      const unicode::U32String& text) const;

  /// Text serialization with provenance ("U+XXXX U+YYYY UC|SimChar|both"
  /// per line) — the portable artifact Section 7.2 proposes embedding in
  /// clients (browser extensions, mail filters). Round-trips with parse().
  [[nodiscard]] std::string serialize() const;
  static HomoglyphDb parse(std::string_view text);

  // --- Flat (DB-artifact) form -----------------------------------------
  //
  // The hash-map representation flattened into sorted arrays: pair keys
  // ((a << 32) | b, a < b) with per-pair provenance, the adjacency lists
  // as a CSR over ascending characters, and the union-find canonical map
  // as parallel key/representative arrays. An adopted view answers every
  // const query by binary search over these spans — zero parsing; the
  // first mutating call (apply_update / update_with_new_characters)
  // materializes a private owned copy first (copy-on-write).

  struct DbConfigFlags {
    static constexpr std::uint32_t kUseUc = 1u << 0;
    static constexpr std::uint32_t kUseSimChar = 1u << 1;
    static constexpr std::uint32_t kIdnaOnly = 1u << 2;
  };

  struct Flat {
    std::vector<std::uint64_t> pair_keys;    // ascending
    std::vector<std::uint8_t> pair_sources;  // parallel to pair_keys
    std::vector<std::uint32_t> adj_cps;      // ascending, unique
    std::vector<std::uint32_t> adj_offsets;  // size adj_cps.size() + 1
    std::vector<std::uint32_t> adj_data;     // sorted within each list
    std::vector<std::uint32_t> canon_keys;   // ascending
    std::vector<std::uint32_t> canon_reps;   // parallel to canon_keys
    std::uint64_t generation = 0;
    std::uint32_t canonical_classes = 0;
    std::uint32_t config_flags = 0;
  };

  struct FlatView {
    std::span<const std::uint64_t> pair_keys;
    std::span<const std::uint8_t> pair_sources;
    std::span<const std::uint32_t> adj_cps;
    std::span<const std::uint32_t> adj_offsets;
    std::span<const std::uint32_t> adj_data;
    std::span<const std::uint32_t> canon_keys;
    std::span<const std::uint32_t> canon_reps;
    std::uint64_t generation = 0;
    std::uint32_t canonical_classes = 0;
    std::uint32_t config_flags = 0;
  };

  /// Flatten the current state (either mode) for serialization.
  [[nodiscard]] Flat to_flat() const;

  /// Adopt immutable flat storage in place. The spans must stay valid for
  /// as long as `backing` is held. Throws std::runtime_error on shape
  /// mismatch (the artifact loader validates sizes structurally first).
  static HomoglyphDb adopt_view(const FlatView& flat,
                                std::shared_ptr<const void> backing);

  /// True when the db reads adopted (e.g. memory-mapped) storage; the
  /// next mutating call flips it back to owned via materialize().
  [[nodiscard]] bool is_view() const noexcept { return view_; }

 private:
  static constexpr unicode::CodePoint kDenseCanonical = 0x100;

  static std::uint64_t key(unicode::CodePoint a, unicode::CodePoint b) noexcept;
  void add_pair(unicode::CodePoint a, unicode::CodePoint b, Source source);
  /// Sort adjacency lists and rebuild the canonical map; every constructor
  /// and parse() must call this once after the last add_pair().
  void finalize();
  /// Merge the components of `a` and `b`, recording every code point whose
  /// representative moved into `changed` (members of the losing component).
  void merge_components(unicode::CodePoint a, unicode::CodePoint b,
                        std::vector<unicode::CodePoint>& changed);
  /// Copy-on-write: rebuild the owned hash-map representation from the
  /// flat view and drop the backing reference. Preserves generation();
  /// resets the change log (exactly like a fresh finalize()).
  void materialize();

  std::unordered_map<std::uint64_t, Source> pair_source_;
  std::unordered_map<unicode::CodePoint, std::vector<unicode::CodePoint>> adjacency_;
  /// Union-find component representatives (only code points that appear in
  /// at least one pair; everything else is its own canonical form).
  std::unordered_map<unicode::CodePoint, unicode::CodePoint> canonical_;
  std::array<unicode::CodePoint, kDenseCanonical> canonical_latin1_{};
  std::size_t canonical_classes_ = 0;
  /// Inverse of canonical_: representative -> every member of its
  /// component, maintained so merges touch only the losing component.
  std::unordered_map<unicode::CodePoint, std::vector<unicode::CodePoint>> component_members_;
  DbConfig config_;
  std::uint64_t generation_ = 0;
  /// canonical_change_log_[i] lists the code points whose representative
  /// moved in generation change_log_base_ + i + 1; finalize() resets the
  /// log (a full rebuild invalidates incremental bookkeeping).
  std::uint64_t change_log_base_ = 0;
  std::vector<std::vector<unicode::CodePoint>> canonical_change_log_;

  /// View mode: const queries binary-search these spans instead of the
  /// hash maps (which stay empty until materialize()). `backing_` owns the
  /// storage — typically the mmap'd DB artifact.
  bool view_ = false;
  std::shared_ptr<const void> backing_;
  std::span<const std::uint64_t> v_pair_keys_;
  std::span<const std::uint8_t> v_pair_sources_;
  std::span<const std::uint32_t> v_adj_cps_;
  std::span<const std::uint32_t> v_adj_offsets_;
  std::span<const std::uint32_t> v_adj_data_;
  std::span<const std::uint32_t> v_canon_keys_;
  std::span<const std::uint32_t> v_canon_reps_;
};

}  // namespace sham::homoglyph
