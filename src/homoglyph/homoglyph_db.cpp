#include "homoglyph/homoglyph_db.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "unicode/idna_properties.hpp"
#include "util/strings.hpp"

namespace sham::homoglyph {

namespace {

/// Minimal union-find over code points, path-halving, union by smaller
/// representative so the final canonical form of a component is its
/// smallest member (deterministic regardless of insertion order).
class UnionFind {
 public:
  unicode::CodePoint find(unicode::CodePoint cp) {
    auto it = parent_.find(cp);
    if (it == parent_.end()) {
      parent_.emplace(cp, cp);
      return cp;
    }
    while (it->second != cp) {
      const auto up = parent_.find(it->second);
      it->second = up->second;  // path halving: point at grandparent
      cp = it->second;
      it = parent_.find(cp);    // continue from the new position, not the old parent
    }
    return cp;
  }

  void unite(unicode::CodePoint a, unicode::CodePoint b) {
    const auto ra = find(a);
    const auto rb = find(b);
    if (ra == rb) return;
    const auto [lo, hi] = std::minmax(ra, rb);
    parent_[hi] = lo;
  }

  const std::unordered_map<unicode::CodePoint, unicode::CodePoint>& nodes() const {
    return parent_;
  }

 private:
  std::unordered_map<unicode::CodePoint, unicode::CodePoint> parent_;
};

}  // namespace

HomoglyphDb::HomoglyphDb() { finalize(); }

void HomoglyphDb::finalize() {
  for (auto& [cp, neighbours] : adjacency_) {
    std::sort(neighbours.begin(), neighbours.end());
  }

  UnionFind uf;
  for (const auto& [cp, neighbours] : adjacency_) {
    for (const auto n : neighbours) uf.unite(cp, n);
  }
  canonical_.clear();
  canonical_.reserve(adjacency_.size());
  std::size_t classes = 0;
  for (const auto& node : uf.nodes()) {
    const auto cp = node.first;
    const auto rep = uf.find(cp);
    canonical_.emplace(cp, rep);
    if (rep == cp) ++classes;
  }
  canonical_classes_ = classes;
  for (unicode::CodePoint cp = 0; cp < kDenseCanonical; ++cp) {
    const auto it = canonical_.find(cp);
    canonical_latin1_[cp] = it == canonical_.end() ? cp : it->second;
  }

  // Rebuild the rep -> members inverse (canonical_ maps every graph node,
  // reps included, so every tracked component here has >= 2 members;
  // singletons are represented by absence).
  component_members_.clear();
  for (const auto& [cp, rep] : canonical_) {
    component_members_[rep].push_back(cp);
  }
  for (auto& [rep, members] : component_members_) {
    std::sort(members.begin(), members.end());
  }
  // A full rebuild invalidates incremental bookkeeping: restart the change
  // log at the current generation.
  change_log_base_ = generation_;
  canonical_change_log_.clear();
}

void HomoglyphDb::merge_components(unicode::CodePoint a, unicode::CodePoint b,
                                   std::vector<unicode::CodePoint>& changed) {
  const auto ra = canonical(a);
  const auto rb = canonical(b);
  if (ra == rb) return;  // within-component pair: no representative moves
  const auto [lo, hi] = std::minmax(ra, rb);

  // Move the losing component's member list out before touching the winner:
  // unordered_map insertion below may rehash and invalidate references.
  std::vector<unicode::CodePoint> losers;
  if (auto it = component_members_.find(hi); it != component_members_.end()) {
    losers = std::move(it->second);
    component_members_.erase(it);
  } else {
    losers.push_back(hi);  // hi was a singleton being pulled into the graph
  }

  std::size_t winner_size = 1;
  auto wit = component_members_.find(lo);
  if (wit == component_members_.end()) {
    wit = component_members_.emplace(lo, std::vector<unicode::CodePoint>{lo}).first;
    // lo is a singleton entering the graph: give it the self-entry
    // finalize() records for every graph node (canonical(lo) is unchanged
    // — absence already meant identity — but the serialized canonical map
    // must match a full rebuild's exactly).
    canonical_.emplace(lo, lo);
  } else {
    winner_size = wit->second.size();
  }

  // The merged component is always non-singleton; each input counted toward
  // canonical_classes_ iff it already had >= 2 members.
  canonical_classes_ += 1;
  if (winner_size >= 2) --canonical_classes_;
  if (losers.size() >= 2) --canonical_classes_;

  auto& winners = wit->second;
  winners.reserve(winners.size() + losers.size());
  for (const auto cp : losers) {
    canonical_[cp] = lo;
    if (cp < kDenseCanonical) canonical_latin1_[cp] = lo;
    winners.push_back(cp);
    changed.push_back(cp);
  }
}

void HomoglyphDb::materialize() {
  if (!view_) return;
  // Rebuild the owned hash-map representation from the flat arrays, then
  // finalize() — which recomputes the identical canonical map (union by
  // smallest representative is deterministic) and restarts the change log
  // at the current generation, exactly like a freshly parsed database.
  pair_source_.clear();
  pair_source_.reserve(v_pair_keys_.size());
  for (std::size_t i = 0; i < v_pair_keys_.size(); ++i) {
    pair_source_.emplace(v_pair_keys_[i], static_cast<Source>(v_pair_sources_[i]));
  }
  adjacency_.clear();
  adjacency_.reserve(v_adj_cps_.size());
  for (std::size_t i = 0; i < v_adj_cps_.size(); ++i) {
    adjacency_.emplace(v_adj_cps_[i],
                       std::vector<unicode::CodePoint>{
                           v_adj_data_.begin() + v_adj_offsets_[i],
                           v_adj_data_.begin() + v_adj_offsets_[i + 1]});
  }
  view_ = false;
  backing_.reset();
  v_pair_keys_ = {};
  v_pair_sources_ = {};
  v_adj_cps_ = {};
  v_adj_offsets_ = {};
  v_adj_data_ = {};
  v_canon_keys_ = {};
  v_canon_reps_ = {};
  finalize();
}

HomoglyphDb::Flat HomoglyphDb::to_flat() const {
  Flat flat;
  flat.generation = generation_;
  flat.canonical_classes = static_cast<std::uint32_t>(canonical_classes_);
  flat.config_flags = (config_.use_uc ? DbConfigFlags::kUseUc : 0) |
                      (config_.use_simchar ? DbConfigFlags::kUseSimChar : 0) |
                      (config_.idna_only ? DbConfigFlags::kIdnaOnly : 0);
  if (view_) {
    flat.pair_keys.assign(v_pair_keys_.begin(), v_pair_keys_.end());
    flat.pair_sources.assign(v_pair_sources_.begin(), v_pair_sources_.end());
    flat.adj_cps.assign(v_adj_cps_.begin(), v_adj_cps_.end());
    flat.adj_offsets.assign(v_adj_offsets_.begin(), v_adj_offsets_.end());
    flat.adj_data.assign(v_adj_data_.begin(), v_adj_data_.end());
    flat.canon_keys.assign(v_canon_keys_.begin(), v_canon_keys_.end());
    flat.canon_reps.assign(v_canon_reps_.begin(), v_canon_reps_.end());
    return flat;
  }

  std::vector<std::pair<std::uint64_t, Source>> pairs{pair_source_.begin(),
                                                      pair_source_.end()};
  std::sort(pairs.begin(), pairs.end());
  flat.pair_keys.reserve(pairs.size());
  flat.pair_sources.reserve(pairs.size());
  for (const auto& [k, s] : pairs) {
    flat.pair_keys.push_back(k);
    flat.pair_sources.push_back(static_cast<std::uint8_t>(s));
  }

  std::vector<unicode::CodePoint> cps;
  cps.reserve(adjacency_.size());
  for (const auto& [cp, neighbours] : adjacency_) cps.push_back(cp);
  std::sort(cps.begin(), cps.end());
  flat.adj_cps.reserve(cps.size());
  flat.adj_offsets.reserve(cps.size() + 1);
  for (const auto cp : cps) {
    flat.adj_cps.push_back(cp);
    flat.adj_offsets.push_back(static_cast<std::uint32_t>(flat.adj_data.size()));
    const auto& neighbours = adjacency_.at(cp);
    flat.adj_data.insert(flat.adj_data.end(), neighbours.begin(), neighbours.end());
  }
  flat.adj_offsets.push_back(static_cast<std::uint32_t>(flat.adj_data.size()));

  std::vector<std::pair<unicode::CodePoint, unicode::CodePoint>> canon{
      canonical_.begin(), canonical_.end()};
  std::sort(canon.begin(), canon.end());
  flat.canon_keys.reserve(canon.size());
  flat.canon_reps.reserve(canon.size());
  for (const auto& [cp, rep] : canon) {
    flat.canon_keys.push_back(cp);
    flat.canon_reps.push_back(rep);
  }
  return flat;
}

HomoglyphDb HomoglyphDb::adopt_view(const FlatView& flat,
                                    std::shared_ptr<const void> backing) {
  if (flat.pair_sources.size() != flat.pair_keys.size() ||
      flat.adj_offsets.size() != flat.adj_cps.size() + 1 ||
      (!flat.adj_offsets.empty() && flat.adj_offsets.back() != flat.adj_data.size()) ||
      flat.canon_reps.size() != flat.canon_keys.size()) {
    throw std::runtime_error{"HomoglyphDb: flat view shape mismatch"};
  }
  HomoglyphDb db;
  db.view_ = true;
  db.backing_ = std::move(backing);
  db.v_pair_keys_ = flat.pair_keys;
  db.v_pair_sources_ = flat.pair_sources;
  db.v_adj_cps_ = flat.adj_cps;
  db.v_adj_offsets_ = flat.adj_offsets;
  db.v_adj_data_ = flat.adj_data;
  db.v_canon_keys_ = flat.canon_keys;
  db.v_canon_reps_ = flat.canon_reps;
  db.generation_ = flat.generation;
  db.canonical_classes_ = flat.canonical_classes;
  db.config_.use_uc = (flat.config_flags & DbConfigFlags::kUseUc) != 0;
  db.config_.use_simchar = (flat.config_flags & DbConfigFlags::kUseSimChar) != 0;
  db.config_.idna_only = (flat.config_flags & DbConfigFlags::kIdnaOnly) != 0;
  // The change log restarts at adoption (same contract as finalize()):
  // canonical_changes_since(generation()) answers with "nothing changed";
  // anything older forces the caller's full rebuild.
  db.change_log_base_ = flat.generation;
  // The inline canonical() fast path is a dense Latin-1 array in both
  // modes; fill it from the (sorted) flat map once at adoption.
  for (unicode::CodePoint cp = 0; cp < kDenseCanonical; ++cp) {
    db.canonical_latin1_[cp] = cp;
  }
  for (std::size_t i = 0; i < flat.canon_keys.size(); ++i) {
    const auto cp = flat.canon_keys[i];
    if (cp >= kDenseCanonical) break;  // keys ascending
    db.canonical_latin1_[cp] = flat.canon_reps[i];
  }
  return db;
}

HomoglyphDb::UpdateResult HomoglyphDb::apply_update(
    std::span<const simchar::HomoglyphPair> pairs, Source source) {
  materialize();  // copy-on-write: views go owned on the first mutation
  const auto permitted = [&](unicode::CodePoint cp) {
    return !config_.idna_only || unicode::is_idna_permitted(cp);
  };
  const auto insert_sorted = [](std::vector<unicode::CodePoint>& v,
                                unicode::CodePoint cp) {
    v.insert(std::upper_bound(v.begin(), v.end(), cp), cp);
  };

  UpdateResult result;
  std::vector<unicode::CodePoint> changed;
  for (const auto& p : pairs) {
    if (p.a == p.b) continue;
    if (!permitted(p.a) || !permitted(p.b)) continue;
    auto [it, inserted] = pair_source_.try_emplace(key(p.a, p.b), source);
    if (!inserted) {
      const auto widened = static_cast<Source>(static_cast<std::uint8_t>(it->second) |
                                               static_cast<std::uint8_t>(source));
      if (widened != it->second) {
        it->second = widened;
        ++result.sources_widened;
      }
      continue;
    }
    ++result.pairs_added;
    // Adjacency lists stay sorted (revert_to_ascii's smallest-LDH scan and
    // serialize determinism depend on it).
    insert_sorted(adjacency_[p.a], p.b);
    insert_sorted(adjacency_[p.b], p.a);
    merge_components(p.a, p.b, changed);
  }

  if (result.pairs_added == 0 && result.sources_widened == 0) return result;
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  result.canonical_changed = changed;
  ++generation_;
  canonical_change_log_.push_back(std::move(changed));
  return result;
}

HomoglyphDb::UpdateResult HomoglyphDb::update_with_new_characters(
    const simchar::SimCharDb& updated) {
  return apply_update(updated.pairs(), Source::kSimChar);
}

std::optional<std::vector<unicode::CodePoint>> HomoglyphDb::canonical_changes_since(
    std::uint64_t since) const {
  if (since == generation_) return std::vector<unicode::CodePoint>{};
  if (since < change_log_base_ || since > generation_) return std::nullopt;
  std::vector<unicode::CodePoint> out;
  for (std::uint64_t g = since; g < generation_; ++g) {
    const auto& step = canonical_change_log_[g - change_log_base_];
    out.insert(out.end(), step.begin(), step.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint64_t HomoglyphDb::key(unicode::CodePoint a, unicode::CodePoint b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

void HomoglyphDb::add_pair(unicode::CodePoint a, unicode::CodePoint b, Source source) {
  if (a == b) return;
  auto [it, inserted] = pair_source_.try_emplace(key(a, b), source);
  if (!inserted) {
    it->second = static_cast<Source>(static_cast<std::uint8_t>(it->second) |
                                     static_cast<std::uint8_t>(source));
    return;
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

HomoglyphDb::HomoglyphDb(const simchar::SimCharDb& simchar_db,
                         const unicode::ConfusablesDb& uc_db, const DbConfig& config)
    : config_(config) {
  const auto permitted = [&](unicode::CodePoint cp) {
    return !config.idna_only || unicode::is_idna_permitted(cp);
  };
  if (config.use_uc) {
    for (const auto& [source, proto] : uc_db.single_char_pairs()) {
      if (permitted(source) && permitted(proto)) add_pair(source, proto, Source::kUc);
    }
  }
  if (config.use_simchar) {
    for (const auto& p : simchar_db.pairs()) {
      // SimChar is built from the PVALID repertoire already; the check is
      // kept for externally loaded databases.
      if (permitted(p.a) && permitted(p.b)) add_pair(p.a, p.b, Source::kSimChar);
    }
  }
  finalize();
}

bool HomoglyphDb::are_homoglyphs(unicode::CodePoint a, unicode::CodePoint b) const {
  return a != b && source_of(a, b).has_value();
}

std::optional<Source> HomoglyphDb::source_of(unicode::CodePoint a,
                                             unicode::CodePoint b) const {
  if (a == b) return std::nullopt;
  const auto k = key(a, b);
  if (view_) {
    const auto it = std::lower_bound(v_pair_keys_.begin(), v_pair_keys_.end(), k);
    if (it == v_pair_keys_.end() || *it != k) return std::nullopt;
    return static_cast<Source>(
        v_pair_sources_[static_cast<std::size_t>(it - v_pair_keys_.begin())]);
  }
  const auto it = pair_source_.find(k);
  if (it == pair_source_.end()) return std::nullopt;
  return it->second;
}

std::vector<unicode::CodePoint> HomoglyphDb::homoglyphs_of(unicode::CodePoint cp) const {
  if (view_) {
    const auto it = std::lower_bound(v_adj_cps_.begin(), v_adj_cps_.end(), cp);
    if (it == v_adj_cps_.end() || *it != cp) return {};
    const auto i = static_cast<std::size_t>(it - v_adj_cps_.begin());
    return {v_adj_data_.begin() + v_adj_offsets_[i],
            v_adj_data_.begin() + v_adj_offsets_[i + 1]};
  }
  const auto it = adjacency_.find(cp);
  if (it == adjacency_.end()) return {};
  return it->second;
}

std::size_t HomoglyphDb::pair_count(Source source) const {
  // A pair counts toward `source` when its provenance includes every bit of
  // `source`: kUc/kSimChar mean "listed in that database (possibly both)",
  // kBoth means "listed in both".
  const auto want = static_cast<std::uint8_t>(source);
  std::size_t n = 0;
  if (view_) {
    for (const auto s : v_pair_sources_) {
      if ((s & want) == want) ++n;
    }
    return n;
  }
  for (const auto& [k, s] : pair_source_) {
    if ((static_cast<std::uint8_t>(s) & want) == want) ++n;
  }
  return n;
}

std::string HomoglyphDb::serialize() const {
  // Deterministic order: sort by key (views are key-sorted already).
  std::vector<std::pair<std::uint64_t, Source>> items;
  if (view_) {
    items.reserve(v_pair_keys_.size());
    for (std::size_t i = 0; i < v_pair_keys_.size(); ++i) {
      items.emplace_back(v_pair_keys_[i], static_cast<Source>(v_pair_sources_[i]));
    }
  } else {
    items.assign(pair_source_.begin(), pair_source_.end());
    std::sort(items.begin(), items.end());
  }
  std::string out;
  out.reserve(items.size() * 24);
  for (const auto& [k, source] : items) {
    out += util::format_codepoint(static_cast<unicode::CodePoint>(k >> 32));
    out += ' ';
    out += util::format_codepoint(static_cast<unicode::CodePoint>(k & 0xFFFFFFFF));
    out += ' ';
    switch (source) {
      case Source::kUc: out += "UC"; break;
      case Source::kSimChar: out += "SimChar"; break;
      case Source::kBoth: out += "both"; break;
    }
    out += '\n';
  }
  return out;
}

HomoglyphDb HomoglyphDb::parse(std::string_view text) {
  HomoglyphDb db;
  std::size_t line_no = 0;
  for (const auto line : util::split(text, '\n')) {
    ++line_no;
    const auto body = util::trim(line);
    if (body.empty() || body.front() == '#') continue;
    const auto fields = util::split_ws(body);
    if (fields.size() != 3) {
      throw std::invalid_argument{"HomoglyphDb::parse: line " +
                                  std::to_string(line_no) + ": expected 3 fields"};
    }
    const auto a = util::parse_hex_codepoint(fields[0]);
    const auto b = util::parse_hex_codepoint(fields[1]);
    Source source;
    if (fields[2] == "UC") {
      source = Source::kUc;
    } else if (fields[2] == "SimChar") {
      source = Source::kSimChar;
    } else if (fields[2] == "both") {
      source = Source::kBoth;
    } else {
      throw std::invalid_argument{"HomoglyphDb::parse: line " +
                                  std::to_string(line_no) + ": bad source tag"};
    }
    db.add_pair(a, b, source);
  }
  db.finalize();
  return db;
}

std::optional<unicode::U32String> HomoglyphDb::revert_to_ascii(
    const unicode::U32String& text) const {
  unicode::U32String out;
  out.reserve(text.size());
  for (const auto cp : text) {
    if (unicode::is_ascii(cp)) {
      out.push_back(cp);
      continue;
    }
    unicode::CodePoint best = 0;
    for (const auto h : homoglyphs_of(cp)) {
      if (unicode::is_ldh(h)) {
        best = h;
        break;  // adjacency is sorted: first LDH hit is the smallest
      }
    }
    if (best == 0) return std::nullopt;
    out.push_back(best);
  }
  return out;
}

}  // namespace sham::homoglyph
