#include "homoglyph/homoglyph_db.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "unicode/idna_properties.hpp"
#include "util/strings.hpp"

namespace sham::homoglyph {

namespace {

/// Minimal union-find over code points, path-halving, union by smaller
/// representative so the final canonical form of a component is its
/// smallest member (deterministic regardless of insertion order).
class UnionFind {
 public:
  unicode::CodePoint find(unicode::CodePoint cp) {
    auto it = parent_.find(cp);
    if (it == parent_.end()) {
      parent_.emplace(cp, cp);
      return cp;
    }
    while (it->second != cp) {
      const auto up = parent_.find(it->second);
      it->second = up->second;  // path halving: point at grandparent
      cp = it->second;
      it = parent_.find(cp);    // continue from the new position, not the old parent
    }
    return cp;
  }

  void unite(unicode::CodePoint a, unicode::CodePoint b) {
    const auto ra = find(a);
    const auto rb = find(b);
    if (ra == rb) return;
    const auto [lo, hi] = std::minmax(ra, rb);
    parent_[hi] = lo;
  }

  const std::unordered_map<unicode::CodePoint, unicode::CodePoint>& nodes() const {
    return parent_;
  }

 private:
  std::unordered_map<unicode::CodePoint, unicode::CodePoint> parent_;
};

}  // namespace

HomoglyphDb::HomoglyphDb() { finalize(); }

void HomoglyphDb::finalize() {
  for (auto& [cp, neighbours] : adjacency_) {
    std::sort(neighbours.begin(), neighbours.end());
  }

  UnionFind uf;
  for (const auto& [cp, neighbours] : adjacency_) {
    for (const auto n : neighbours) uf.unite(cp, n);
  }
  canonical_.clear();
  canonical_.reserve(adjacency_.size());
  std::size_t classes = 0;
  for (const auto& node : uf.nodes()) {
    const auto cp = node.first;
    const auto rep = uf.find(cp);
    canonical_.emplace(cp, rep);
    if (rep == cp) ++classes;
  }
  canonical_classes_ = classes;
  for (unicode::CodePoint cp = 0; cp < kDenseCanonical; ++cp) {
    const auto it = canonical_.find(cp);
    canonical_latin1_[cp] = it == canonical_.end() ? cp : it->second;
  }

  // Rebuild the rep -> members inverse (canonical_ maps every graph node,
  // reps included, so every tracked component here has >= 2 members;
  // singletons are represented by absence).
  component_members_.clear();
  for (const auto& [cp, rep] : canonical_) {
    component_members_[rep].push_back(cp);
  }
  for (auto& [rep, members] : component_members_) {
    std::sort(members.begin(), members.end());
  }
  // A full rebuild invalidates incremental bookkeeping: restart the change
  // log at the current generation.
  change_log_base_ = generation_;
  canonical_change_log_.clear();
}

void HomoglyphDb::merge_components(unicode::CodePoint a, unicode::CodePoint b,
                                   std::vector<unicode::CodePoint>& changed) {
  const auto ra = canonical(a);
  const auto rb = canonical(b);
  if (ra == rb) return;  // within-component pair: no representative moves
  const auto [lo, hi] = std::minmax(ra, rb);

  // Move the losing component's member list out before touching the winner:
  // unordered_map insertion below may rehash and invalidate references.
  std::vector<unicode::CodePoint> losers;
  if (auto it = component_members_.find(hi); it != component_members_.end()) {
    losers = std::move(it->second);
    component_members_.erase(it);
  } else {
    losers.push_back(hi);  // hi was a singleton being pulled into the graph
  }

  std::size_t winner_size = 1;
  auto wit = component_members_.find(lo);
  if (wit == component_members_.end()) {
    wit = component_members_.emplace(lo, std::vector<unicode::CodePoint>{lo}).first;
  } else {
    winner_size = wit->second.size();
  }

  // The merged component is always non-singleton; each input counted toward
  // canonical_classes_ iff it already had >= 2 members.
  canonical_classes_ += 1;
  if (winner_size >= 2) --canonical_classes_;
  if (losers.size() >= 2) --canonical_classes_;

  auto& winners = wit->second;
  winners.reserve(winners.size() + losers.size());
  for (const auto cp : losers) {
    canonical_[cp] = lo;
    if (cp < kDenseCanonical) canonical_latin1_[cp] = lo;
    winners.push_back(cp);
    changed.push_back(cp);
  }
}

HomoglyphDb::UpdateResult HomoglyphDb::apply_update(
    std::span<const simchar::HomoglyphPair> pairs, Source source) {
  const auto permitted = [&](unicode::CodePoint cp) {
    return !config_.idna_only || unicode::is_idna_permitted(cp);
  };
  const auto insert_sorted = [](std::vector<unicode::CodePoint>& v,
                                unicode::CodePoint cp) {
    v.insert(std::upper_bound(v.begin(), v.end(), cp), cp);
  };

  UpdateResult result;
  std::vector<unicode::CodePoint> changed;
  for (const auto& p : pairs) {
    if (p.a == p.b) continue;
    if (!permitted(p.a) || !permitted(p.b)) continue;
    auto [it, inserted] = pair_source_.try_emplace(key(p.a, p.b), source);
    if (!inserted) {
      const auto widened = static_cast<Source>(static_cast<std::uint8_t>(it->second) |
                                               static_cast<std::uint8_t>(source));
      if (widened != it->second) {
        it->second = widened;
        ++result.sources_widened;
      }
      continue;
    }
    ++result.pairs_added;
    // Adjacency lists stay sorted (revert_to_ascii's smallest-LDH scan and
    // serialize determinism depend on it).
    insert_sorted(adjacency_[p.a], p.b);
    insert_sorted(adjacency_[p.b], p.a);
    merge_components(p.a, p.b, changed);
  }

  if (result.pairs_added == 0 && result.sources_widened == 0) return result;
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  result.canonical_changed = changed;
  ++generation_;
  canonical_change_log_.push_back(std::move(changed));
  return result;
}

HomoglyphDb::UpdateResult HomoglyphDb::update_with_new_characters(
    const simchar::SimCharDb& updated) {
  return apply_update(updated.pairs(), Source::kSimChar);
}

std::optional<std::vector<unicode::CodePoint>> HomoglyphDb::canonical_changes_since(
    std::uint64_t since) const {
  if (since == generation_) return std::vector<unicode::CodePoint>{};
  if (since < change_log_base_ || since > generation_) return std::nullopt;
  std::vector<unicode::CodePoint> out;
  for (std::uint64_t g = since; g < generation_; ++g) {
    const auto& step = canonical_change_log_[g - change_log_base_];
    out.insert(out.end(), step.begin(), step.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint64_t HomoglyphDb::key(unicode::CodePoint a, unicode::CodePoint b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

void HomoglyphDb::add_pair(unicode::CodePoint a, unicode::CodePoint b, Source source) {
  if (a == b) return;
  auto [it, inserted] = pair_source_.try_emplace(key(a, b), source);
  if (!inserted) {
    it->second = static_cast<Source>(static_cast<std::uint8_t>(it->second) |
                                     static_cast<std::uint8_t>(source));
    return;
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

HomoglyphDb::HomoglyphDb(const simchar::SimCharDb& simchar_db,
                         const unicode::ConfusablesDb& uc_db, const DbConfig& config)
    : config_(config) {
  const auto permitted = [&](unicode::CodePoint cp) {
    return !config.idna_only || unicode::is_idna_permitted(cp);
  };
  if (config.use_uc) {
    for (const auto& [source, proto] : uc_db.single_char_pairs()) {
      if (permitted(source) && permitted(proto)) add_pair(source, proto, Source::kUc);
    }
  }
  if (config.use_simchar) {
    for (const auto& p : simchar_db.pairs()) {
      // SimChar is built from the PVALID repertoire already; the check is
      // kept for externally loaded databases.
      if (permitted(p.a) && permitted(p.b)) add_pair(p.a, p.b, Source::kSimChar);
    }
  }
  finalize();
}

bool HomoglyphDb::are_homoglyphs(unicode::CodePoint a, unicode::CodePoint b) const {
  return a != b && pair_source_.contains(key(a, b));
}

std::optional<Source> HomoglyphDb::source_of(unicode::CodePoint a,
                                             unicode::CodePoint b) const {
  if (a == b) return std::nullopt;
  const auto it = pair_source_.find(key(a, b));
  if (it == pair_source_.end()) return std::nullopt;
  return it->second;
}

std::vector<unicode::CodePoint> HomoglyphDb::homoglyphs_of(unicode::CodePoint cp) const {
  const auto it = adjacency_.find(cp);
  if (it == adjacency_.end()) return {};
  return it->second;
}

std::size_t HomoglyphDb::pair_count(Source source) const {
  // A pair counts toward `source` when its provenance includes every bit of
  // `source`: kUc/kSimChar mean "listed in that database (possibly both)",
  // kBoth means "listed in both".
  const auto want = static_cast<std::uint8_t>(source);
  std::size_t n = 0;
  for (const auto& [k, s] : pair_source_) {
    if ((static_cast<std::uint8_t>(s) & want) == want) ++n;
  }
  return n;
}

std::string HomoglyphDb::serialize() const {
  // Deterministic order: sort by key.
  std::vector<std::pair<std::uint64_t, Source>> items{pair_source_.begin(),
                                                      pair_source_.end()};
  std::sort(items.begin(), items.end());
  std::string out;
  out.reserve(items.size() * 24);
  for (const auto& [k, source] : items) {
    out += util::format_codepoint(static_cast<unicode::CodePoint>(k >> 32));
    out += ' ';
    out += util::format_codepoint(static_cast<unicode::CodePoint>(k & 0xFFFFFFFF));
    out += ' ';
    switch (source) {
      case Source::kUc: out += "UC"; break;
      case Source::kSimChar: out += "SimChar"; break;
      case Source::kBoth: out += "both"; break;
    }
    out += '\n';
  }
  return out;
}

HomoglyphDb HomoglyphDb::parse(std::string_view text) {
  HomoglyphDb db;
  std::size_t line_no = 0;
  for (const auto line : util::split(text, '\n')) {
    ++line_no;
    const auto body = util::trim(line);
    if (body.empty() || body.front() == '#') continue;
    const auto fields = util::split_ws(body);
    if (fields.size() != 3) {
      throw std::invalid_argument{"HomoglyphDb::parse: line " +
                                  std::to_string(line_no) + ": expected 3 fields"};
    }
    const auto a = util::parse_hex_codepoint(fields[0]);
    const auto b = util::parse_hex_codepoint(fields[1]);
    Source source;
    if (fields[2] == "UC") {
      source = Source::kUc;
    } else if (fields[2] == "SimChar") {
      source = Source::kSimChar;
    } else if (fields[2] == "both") {
      source = Source::kBoth;
    } else {
      throw std::invalid_argument{"HomoglyphDb::parse: line " +
                                  std::to_string(line_no) + ": bad source tag"};
    }
    db.add_pair(a, b, source);
  }
  db.finalize();
  return db;
}

std::optional<unicode::U32String> HomoglyphDb::revert_to_ascii(
    const unicode::U32String& text) const {
  unicode::U32String out;
  out.reserve(text.size());
  for (const auto cp : text) {
    if (unicode::is_ascii(cp)) {
      out.push_back(cp);
      continue;
    }
    unicode::CodePoint best = 0;
    for (const auto h : homoglyphs_of(cp)) {
      if (unicode::is_ldh(h)) {
        best = h;
        break;  // adjacency is sorted: first LDH hit is the smallest
      }
    }
    if (best == 0) return std::nullopt;
    out.push_back(best);
  }
  return out;
}

}  // namespace sham::homoglyph
