# Empty dependencies file for test_utf8.
# This may be replaced when dependencies are built.
