file(REMOVE_RECURSE
  "CMakeFiles/test_glyph.dir/test_glyph.cpp.o"
  "CMakeFiles/test_glyph.dir/test_glyph.cpp.o.d"
  "test_glyph"
  "test_glyph.pdb"
  "test_glyph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glyph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
