# Empty compiler generated dependencies file for test_glyph.
# This may be replaced when dependencies are built.
