# Empty dependencies file for test_idna.
# This may be replaced when dependencies are built.
