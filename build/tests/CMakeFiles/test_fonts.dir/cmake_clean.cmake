file(REMOVE_RECURSE
  "CMakeFiles/test_fonts.dir/test_fonts.cpp.o"
  "CMakeFiles/test_fonts.dir/test_fonts.cpp.o.d"
  "test_fonts"
  "test_fonts.pdb"
  "test_fonts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fonts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
