# Empty compiler generated dependencies file for test_fonts.
# This may be replaced when dependencies are built.
