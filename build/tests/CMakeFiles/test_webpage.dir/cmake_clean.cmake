file(REMOVE_RECURSE
  "CMakeFiles/test_webpage.dir/test_webpage.cpp.o"
  "CMakeFiles/test_webpage.dir/test_webpage.cpp.o.d"
  "test_webpage"
  "test_webpage.pdb"
  "test_webpage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_webpage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
