# Empty compiler generated dependencies file for test_webpage.
# This may be replaced when dependencies are built.
