file(REMOVE_RECURSE
  "CMakeFiles/test_simchar.dir/test_simchar.cpp.o"
  "CMakeFiles/test_simchar.dir/test_simchar.cpp.o.d"
  "test_simchar"
  "test_simchar.pdb"
  "test_simchar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simchar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
