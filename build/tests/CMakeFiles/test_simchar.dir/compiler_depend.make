# Empty compiler generated dependencies file for test_simchar.
# This may be replaced when dependencies are built.
