file(REMOVE_RECURSE
  "CMakeFiles/test_simchar_update.dir/test_simchar_update.cpp.o"
  "CMakeFiles/test_simchar_update.dir/test_simchar_update.cpp.o.d"
  "test_simchar_update"
  "test_simchar_update.pdb"
  "test_simchar_update[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simchar_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
