# Empty dependencies file for test_simchar_update.
# This may be replaced when dependencies are built.
