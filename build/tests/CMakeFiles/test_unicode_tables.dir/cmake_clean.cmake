file(REMOVE_RECURSE
  "CMakeFiles/test_unicode_tables.dir/test_unicode_tables.cpp.o"
  "CMakeFiles/test_unicode_tables.dir/test_unicode_tables.cpp.o.d"
  "test_unicode_tables"
  "test_unicode_tables.pdb"
  "test_unicode_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unicode_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
