# Empty dependencies file for test_unicode_tables.
# This may be replaced when dependencies are built.
