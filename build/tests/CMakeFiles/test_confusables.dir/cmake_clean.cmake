file(REMOVE_RECURSE
  "CMakeFiles/test_confusables.dir/test_confusables.cpp.o"
  "CMakeFiles/test_confusables.dir/test_confusables.cpp.o.d"
  "test_confusables"
  "test_confusables.pdb"
  "test_confusables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_confusables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
