file(REMOVE_RECURSE
  "CMakeFiles/test_homoglyph_db.dir/test_homoglyph_db.cpp.o"
  "CMakeFiles/test_homoglyph_db.dir/test_homoglyph_db.cpp.o.d"
  "test_homoglyph_db"
  "test_homoglyph_db.pdb"
  "test_homoglyph_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_homoglyph_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
