# Empty compiler generated dependencies file for test_homoglyph_db.
# This may be replaced when dependencies are built.
