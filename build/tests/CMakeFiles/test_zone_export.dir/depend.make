# Empty dependencies file for test_zone_export.
# This may be replaced when dependencies are built.
