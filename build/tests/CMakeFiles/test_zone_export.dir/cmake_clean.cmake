file(REMOVE_RECURSE
  "CMakeFiles/test_zone_export.dir/test_zone_export.cpp.o"
  "CMakeFiles/test_zone_export.dir/test_zone_export.cpp.o.d"
  "test_zone_export"
  "test_zone_export.pdb"
  "test_zone_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zone_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
