# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_utf8[1]_include.cmake")
include("/root/repo/build/tests/test_punycode[1]_include.cmake")
include("/root/repo/build/tests/test_unicode_tables[1]_include.cmake")
include("/root/repo/build/tests/test_confusables[1]_include.cmake")
include("/root/repo/build/tests/test_idna[1]_include.cmake")
include("/root/repo/build/tests/test_glyph[1]_include.cmake")
include("/root/repo/build/tests/test_fonts[1]_include.cmake")
include("/root/repo/build/tests/test_simchar[1]_include.cmake")
include("/root/repo/build/tests/test_homoglyph_db[1]_include.cmake")
include("/root/repo/build/tests/test_detector[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_internet[1]_include.cmake")
include("/root/repo/build/tests/test_perception[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_measure[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_simchar_update[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_webpage[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_zone_export[1]_include.cmake")
