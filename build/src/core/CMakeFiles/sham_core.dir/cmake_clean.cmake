file(REMOVE_RECURSE
  "CMakeFiles/sham_core.dir/browser_policy.cpp.o"
  "CMakeFiles/sham_core.dir/browser_policy.cpp.o.d"
  "CMakeFiles/sham_core.dir/shamfinder.cpp.o"
  "CMakeFiles/sham_core.dir/shamfinder.cpp.o.d"
  "CMakeFiles/sham_core.dir/warning.cpp.o"
  "CMakeFiles/sham_core.dir/warning.cpp.o.d"
  "libsham_core.a"
  "libsham_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
