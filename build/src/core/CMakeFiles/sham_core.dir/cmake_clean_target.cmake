file(REMOVE_RECURSE
  "libsham_core.a"
)
