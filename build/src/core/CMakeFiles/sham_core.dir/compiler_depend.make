# Empty compiler generated dependencies file for sham_core.
# This may be replaced when dependencies are built.
