file(REMOVE_RECURSE
  "libsham_homoglyph.a"
)
