# Empty compiler generated dependencies file for sham_homoglyph.
# This may be replaced when dependencies are built.
