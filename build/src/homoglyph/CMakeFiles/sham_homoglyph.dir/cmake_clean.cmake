file(REMOVE_RECURSE
  "CMakeFiles/sham_homoglyph.dir/homoglyph_db.cpp.o"
  "CMakeFiles/sham_homoglyph.dir/homoglyph_db.cpp.o.d"
  "libsham_homoglyph.a"
  "libsham_homoglyph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_homoglyph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
