file(REMOVE_RECURSE
  "CMakeFiles/sham_util.dir/log.cpp.o"
  "CMakeFiles/sham_util.dir/log.cpp.o.d"
  "CMakeFiles/sham_util.dir/rng.cpp.o"
  "CMakeFiles/sham_util.dir/rng.cpp.o.d"
  "CMakeFiles/sham_util.dir/strings.cpp.o"
  "CMakeFiles/sham_util.dir/strings.cpp.o.d"
  "CMakeFiles/sham_util.dir/table.cpp.o"
  "CMakeFiles/sham_util.dir/table.cpp.o.d"
  "CMakeFiles/sham_util.dir/thread_pool.cpp.o"
  "CMakeFiles/sham_util.dir/thread_pool.cpp.o.d"
  "libsham_util.a"
  "libsham_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
