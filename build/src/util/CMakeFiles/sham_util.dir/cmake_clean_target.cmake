file(REMOVE_RECURSE
  "libsham_util.a"
)
