# Empty dependencies file for sham_util.
# This may be replaced when dependencies are built.
