
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/candidates.cpp" "src/detect/CMakeFiles/sham_detect.dir/candidates.cpp.o" "gcc" "src/detect/CMakeFiles/sham_detect.dir/candidates.cpp.o.d"
  "/root/repo/src/detect/detector.cpp" "src/detect/CMakeFiles/sham_detect.dir/detector.cpp.o" "gcc" "src/detect/CMakeFiles/sham_detect.dir/detector.cpp.o.d"
  "/root/repo/src/detect/engine.cpp" "src/detect/CMakeFiles/sham_detect.dir/engine.cpp.o" "gcc" "src/detect/CMakeFiles/sham_detect.dir/engine.cpp.o.d"
  "/root/repo/src/detect/ranking.cpp" "src/detect/CMakeFiles/sham_detect.dir/ranking.cpp.o" "gcc" "src/detect/CMakeFiles/sham_detect.dir/ranking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/homoglyph/CMakeFiles/sham_homoglyph.dir/DependInfo.cmake"
  "/root/repo/build/src/idna/CMakeFiles/sham_idna.dir/DependInfo.cmake"
  "/root/repo/build/src/font/CMakeFiles/sham_font.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sham_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simchar/CMakeFiles/sham_simchar.dir/DependInfo.cmake"
  "/root/repo/build/src/unicode/CMakeFiles/sham_unicode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
