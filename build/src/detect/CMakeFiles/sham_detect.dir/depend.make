# Empty dependencies file for sham_detect.
# This may be replaced when dependencies are built.
