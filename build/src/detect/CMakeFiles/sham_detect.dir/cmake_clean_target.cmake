file(REMOVE_RECURSE
  "libsham_detect.a"
)
