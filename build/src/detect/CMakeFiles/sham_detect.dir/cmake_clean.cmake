file(REMOVE_RECURSE
  "CMakeFiles/sham_detect.dir/candidates.cpp.o"
  "CMakeFiles/sham_detect.dir/candidates.cpp.o.d"
  "CMakeFiles/sham_detect.dir/detector.cpp.o"
  "CMakeFiles/sham_detect.dir/detector.cpp.o.d"
  "CMakeFiles/sham_detect.dir/engine.cpp.o"
  "CMakeFiles/sham_detect.dir/engine.cpp.o.d"
  "CMakeFiles/sham_detect.dir/ranking.cpp.o"
  "CMakeFiles/sham_detect.dir/ranking.cpp.o.d"
  "libsham_detect.a"
  "libsham_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
