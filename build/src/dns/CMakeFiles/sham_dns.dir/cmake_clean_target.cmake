file(REMOVE_RECURSE
  "libsham_dns.a"
)
