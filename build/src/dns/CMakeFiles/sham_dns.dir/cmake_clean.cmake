file(REMOVE_RECURSE
  "CMakeFiles/sham_dns.dir/domain.cpp.o"
  "CMakeFiles/sham_dns.dir/domain.cpp.o.d"
  "CMakeFiles/sham_dns.dir/langid.cpp.o"
  "CMakeFiles/sham_dns.dir/langid.cpp.o.d"
  "CMakeFiles/sham_dns.dir/records.cpp.o"
  "CMakeFiles/sham_dns.dir/records.cpp.o.d"
  "CMakeFiles/sham_dns.dir/zone_file.cpp.o"
  "CMakeFiles/sham_dns.dir/zone_file.cpp.o.d"
  "libsham_dns.a"
  "libsham_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
