# Empty dependencies file for sham_dns.
# This may be replaced when dependencies are built.
