
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/domain.cpp" "src/dns/CMakeFiles/sham_dns.dir/domain.cpp.o" "gcc" "src/dns/CMakeFiles/sham_dns.dir/domain.cpp.o.d"
  "/root/repo/src/dns/langid.cpp" "src/dns/CMakeFiles/sham_dns.dir/langid.cpp.o" "gcc" "src/dns/CMakeFiles/sham_dns.dir/langid.cpp.o.d"
  "/root/repo/src/dns/records.cpp" "src/dns/CMakeFiles/sham_dns.dir/records.cpp.o" "gcc" "src/dns/CMakeFiles/sham_dns.dir/records.cpp.o.d"
  "/root/repo/src/dns/zone_file.cpp" "src/dns/CMakeFiles/sham_dns.dir/zone_file.cpp.o" "gcc" "src/dns/CMakeFiles/sham_dns.dir/zone_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idna/CMakeFiles/sham_idna.dir/DependInfo.cmake"
  "/root/repo/build/src/unicode/CMakeFiles/sham_unicode.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sham_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
