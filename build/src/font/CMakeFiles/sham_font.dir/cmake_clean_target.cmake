file(REMOVE_RECURSE
  "libsham_font.a"
)
