
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/font/freetype_font.cpp" "src/font/CMakeFiles/sham_font.dir/freetype_font.cpp.o" "gcc" "src/font/CMakeFiles/sham_font.dir/freetype_font.cpp.o.d"
  "/root/repo/src/font/glyph.cpp" "src/font/CMakeFiles/sham_font.dir/glyph.cpp.o" "gcc" "src/font/CMakeFiles/sham_font.dir/glyph.cpp.o.d"
  "/root/repo/src/font/hex_font.cpp" "src/font/CMakeFiles/sham_font.dir/hex_font.cpp.o" "gcc" "src/font/CMakeFiles/sham_font.dir/hex_font.cpp.o.d"
  "/root/repo/src/font/metrics.cpp" "src/font/CMakeFiles/sham_font.dir/metrics.cpp.o" "gcc" "src/font/CMakeFiles/sham_font.dir/metrics.cpp.o.d"
  "/root/repo/src/font/paper_font.cpp" "src/font/CMakeFiles/sham_font.dir/paper_font.cpp.o" "gcc" "src/font/CMakeFiles/sham_font.dir/paper_font.cpp.o.d"
  "/root/repo/src/font/synthetic_font.cpp" "src/font/CMakeFiles/sham_font.dir/synthetic_font.cpp.o" "gcc" "src/font/CMakeFiles/sham_font.dir/synthetic_font.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unicode/CMakeFiles/sham_unicode.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sham_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
