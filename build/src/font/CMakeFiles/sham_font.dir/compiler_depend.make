# Empty compiler generated dependencies file for sham_font.
# This may be replaced when dependencies are built.
