file(REMOVE_RECURSE
  "CMakeFiles/sham_font.dir/freetype_font.cpp.o"
  "CMakeFiles/sham_font.dir/freetype_font.cpp.o.d"
  "CMakeFiles/sham_font.dir/glyph.cpp.o"
  "CMakeFiles/sham_font.dir/glyph.cpp.o.d"
  "CMakeFiles/sham_font.dir/hex_font.cpp.o"
  "CMakeFiles/sham_font.dir/hex_font.cpp.o.d"
  "CMakeFiles/sham_font.dir/metrics.cpp.o"
  "CMakeFiles/sham_font.dir/metrics.cpp.o.d"
  "CMakeFiles/sham_font.dir/paper_font.cpp.o"
  "CMakeFiles/sham_font.dir/paper_font.cpp.o.d"
  "CMakeFiles/sham_font.dir/synthetic_font.cpp.o"
  "CMakeFiles/sham_font.dir/synthetic_font.cpp.o.d"
  "libsham_font.a"
  "libsham_font.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_font.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
