# Empty compiler generated dependencies file for sham_simchar.
# This may be replaced when dependencies are built.
