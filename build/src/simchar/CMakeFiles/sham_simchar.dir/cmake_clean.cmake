file(REMOVE_RECURSE
  "CMakeFiles/sham_simchar.dir/simchar.cpp.o"
  "CMakeFiles/sham_simchar.dir/simchar.cpp.o.d"
  "libsham_simchar.a"
  "libsham_simchar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_simchar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
