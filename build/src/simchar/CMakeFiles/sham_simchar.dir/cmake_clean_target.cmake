file(REMOVE_RECURSE
  "libsham_simchar.a"
)
