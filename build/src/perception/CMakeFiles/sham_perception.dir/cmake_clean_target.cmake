file(REMOVE_RECURSE
  "libsham_perception.a"
)
