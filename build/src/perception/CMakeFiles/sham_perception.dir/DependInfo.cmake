
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perception/crowd_study.cpp" "src/perception/CMakeFiles/sham_perception.dir/crowd_study.cpp.o" "gcc" "src/perception/CMakeFiles/sham_perception.dir/crowd_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unicode/CMakeFiles/sham_unicode.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sham_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
