# Empty dependencies file for sham_perception.
# This may be replaced when dependencies are built.
