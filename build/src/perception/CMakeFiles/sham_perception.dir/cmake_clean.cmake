file(REMOVE_RECURSE
  "CMakeFiles/sham_perception.dir/crowd_study.cpp.o"
  "CMakeFiles/sham_perception.dir/crowd_study.cpp.o.d"
  "libsham_perception.a"
  "libsham_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
