# Empty compiler generated dependencies file for sham_idna.
# This may be replaced when dependencies are built.
