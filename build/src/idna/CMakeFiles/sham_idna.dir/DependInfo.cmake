
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idna/idna.cpp" "src/idna/CMakeFiles/sham_idna.dir/idna.cpp.o" "gcc" "src/idna/CMakeFiles/sham_idna.dir/idna.cpp.o.d"
  "/root/repo/src/idna/punycode.cpp" "src/idna/CMakeFiles/sham_idna.dir/punycode.cpp.o" "gcc" "src/idna/CMakeFiles/sham_idna.dir/punycode.cpp.o.d"
  "/root/repo/src/idna/tld_policy.cpp" "src/idna/CMakeFiles/sham_idna.dir/tld_policy.cpp.o" "gcc" "src/idna/CMakeFiles/sham_idna.dir/tld_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unicode/CMakeFiles/sham_unicode.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sham_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
