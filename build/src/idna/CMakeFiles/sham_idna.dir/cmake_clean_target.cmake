file(REMOVE_RECURSE
  "libsham_idna.a"
)
