file(REMOVE_RECURSE
  "CMakeFiles/sham_idna.dir/idna.cpp.o"
  "CMakeFiles/sham_idna.dir/idna.cpp.o.d"
  "CMakeFiles/sham_idna.dir/punycode.cpp.o"
  "CMakeFiles/sham_idna.dir/punycode.cpp.o.d"
  "CMakeFiles/sham_idna.dir/tld_policy.cpp.o"
  "CMakeFiles/sham_idna.dir/tld_policy.cpp.o.d"
  "libsham_idna.a"
  "libsham_idna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_idna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
