file(REMOVE_RECURSE
  "libsham_internet.a"
)
