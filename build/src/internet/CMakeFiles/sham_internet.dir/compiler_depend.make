# Empty compiler generated dependencies file for sham_internet.
# This may be replaced when dependencies are built.
