
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/internet/brands.cpp" "src/internet/CMakeFiles/sham_internet.dir/brands.cpp.o" "gcc" "src/internet/CMakeFiles/sham_internet.dir/brands.cpp.o.d"
  "/root/repo/src/internet/idn_corpus.cpp" "src/internet/CMakeFiles/sham_internet.dir/idn_corpus.cpp.o" "gcc" "src/internet/CMakeFiles/sham_internet.dir/idn_corpus.cpp.o.d"
  "/root/repo/src/internet/scenario.cpp" "src/internet/CMakeFiles/sham_internet.dir/scenario.cpp.o" "gcc" "src/internet/CMakeFiles/sham_internet.dir/scenario.cpp.o.d"
  "/root/repo/src/internet/webpage.cpp" "src/internet/CMakeFiles/sham_internet.dir/webpage.cpp.o" "gcc" "src/internet/CMakeFiles/sham_internet.dir/webpage.cpp.o.d"
  "/root/repo/src/internet/world.cpp" "src/internet/CMakeFiles/sham_internet.dir/world.cpp.o" "gcc" "src/internet/CMakeFiles/sham_internet.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/sham_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/homoglyph/CMakeFiles/sham_homoglyph.dir/DependInfo.cmake"
  "/root/repo/build/src/idna/CMakeFiles/sham_idna.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sham_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simchar/CMakeFiles/sham_simchar.dir/DependInfo.cmake"
  "/root/repo/build/src/font/CMakeFiles/sham_font.dir/DependInfo.cmake"
  "/root/repo/build/src/unicode/CMakeFiles/sham_unicode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
