file(REMOVE_RECURSE
  "CMakeFiles/sham_internet.dir/brands.cpp.o"
  "CMakeFiles/sham_internet.dir/brands.cpp.o.d"
  "CMakeFiles/sham_internet.dir/idn_corpus.cpp.o"
  "CMakeFiles/sham_internet.dir/idn_corpus.cpp.o.d"
  "CMakeFiles/sham_internet.dir/scenario.cpp.o"
  "CMakeFiles/sham_internet.dir/scenario.cpp.o.d"
  "CMakeFiles/sham_internet.dir/webpage.cpp.o"
  "CMakeFiles/sham_internet.dir/webpage.cpp.o.d"
  "CMakeFiles/sham_internet.dir/world.cpp.o"
  "CMakeFiles/sham_internet.dir/world.cpp.o.d"
  "libsham_internet.a"
  "libsham_internet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_internet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
