# Empty compiler generated dependencies file for sham_measure.
# This may be replaced when dependencies are built.
