file(REMOVE_RECURSE
  "libsham_measure.a"
)
