file(REMOVE_RECURSE
  "CMakeFiles/sham_measure.dir/charset_experiments.cpp.o"
  "CMakeFiles/sham_measure.dir/charset_experiments.cpp.o.d"
  "CMakeFiles/sham_measure.dir/environment.cpp.o"
  "CMakeFiles/sham_measure.dir/environment.cpp.o.d"
  "CMakeFiles/sham_measure.dir/report.cpp.o"
  "CMakeFiles/sham_measure.dir/report.cpp.o.d"
  "CMakeFiles/sham_measure.dir/wild_experiments.cpp.o"
  "CMakeFiles/sham_measure.dir/wild_experiments.cpp.o.d"
  "libsham_measure.a"
  "libsham_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
