file(REMOVE_RECURSE
  "libsham_unicode.a"
)
