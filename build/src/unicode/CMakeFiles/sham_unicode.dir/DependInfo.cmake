
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unicode/blocks.cpp" "src/unicode/CMakeFiles/sham_unicode.dir/blocks.cpp.o" "gcc" "src/unicode/CMakeFiles/sham_unicode.dir/blocks.cpp.o.d"
  "/root/repo/src/unicode/category.cpp" "src/unicode/CMakeFiles/sham_unicode.dir/category.cpp.o" "gcc" "src/unicode/CMakeFiles/sham_unicode.dir/category.cpp.o.d"
  "/root/repo/src/unicode/confusables.cpp" "src/unicode/CMakeFiles/sham_unicode.dir/confusables.cpp.o" "gcc" "src/unicode/CMakeFiles/sham_unicode.dir/confusables.cpp.o.d"
  "/root/repo/src/unicode/idna_properties.cpp" "src/unicode/CMakeFiles/sham_unicode.dir/idna_properties.cpp.o" "gcc" "src/unicode/CMakeFiles/sham_unicode.dir/idna_properties.cpp.o.d"
  "/root/repo/src/unicode/script.cpp" "src/unicode/CMakeFiles/sham_unicode.dir/script.cpp.o" "gcc" "src/unicode/CMakeFiles/sham_unicode.dir/script.cpp.o.d"
  "/root/repo/src/unicode/utf8.cpp" "src/unicode/CMakeFiles/sham_unicode.dir/utf8.cpp.o" "gcc" "src/unicode/CMakeFiles/sham_unicode.dir/utf8.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sham_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
