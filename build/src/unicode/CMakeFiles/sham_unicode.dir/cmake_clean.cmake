file(REMOVE_RECURSE
  "CMakeFiles/sham_unicode.dir/blocks.cpp.o"
  "CMakeFiles/sham_unicode.dir/blocks.cpp.o.d"
  "CMakeFiles/sham_unicode.dir/category.cpp.o"
  "CMakeFiles/sham_unicode.dir/category.cpp.o.d"
  "CMakeFiles/sham_unicode.dir/confusables.cpp.o"
  "CMakeFiles/sham_unicode.dir/confusables.cpp.o.d"
  "CMakeFiles/sham_unicode.dir/idna_properties.cpp.o"
  "CMakeFiles/sham_unicode.dir/idna_properties.cpp.o.d"
  "CMakeFiles/sham_unicode.dir/script.cpp.o"
  "CMakeFiles/sham_unicode.dir/script.cpp.o.d"
  "CMakeFiles/sham_unicode.dir/utf8.cpp.o"
  "CMakeFiles/sham_unicode.dir/utf8.cpp.o.d"
  "libsham_unicode.a"
  "libsham_unicode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sham_unicode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
