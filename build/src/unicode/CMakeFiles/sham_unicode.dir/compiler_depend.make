# Empty compiler generated dependencies file for sham_unicode.
# This may be replaced when dependencies are built.
