file(REMOVE_RECURSE
  "CMakeFiles/build_simchar_db.dir/build_simchar_db.cpp.o"
  "CMakeFiles/build_simchar_db.dir/build_simchar_db.cpp.o.d"
  "build_simchar_db"
  "build_simchar_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_simchar_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
