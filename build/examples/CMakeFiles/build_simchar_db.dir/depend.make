# Empty dependencies file for build_simchar_db.
# This may be replaced when dependencies are built.
