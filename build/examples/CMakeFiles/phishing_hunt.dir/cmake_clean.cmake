file(REMOVE_RECURSE
  "CMakeFiles/phishing_hunt.dir/phishing_hunt.cpp.o"
  "CMakeFiles/phishing_hunt.dir/phishing_hunt.cpp.o.d"
  "phishing_hunt"
  "phishing_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phishing_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
