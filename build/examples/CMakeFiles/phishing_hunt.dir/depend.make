# Empty dependencies file for phishing_hunt.
# This may be replaced when dependencies are built.
