# Empty compiler generated dependencies file for zone_audit.
# This may be replaced when dependencies are built.
