# Empty compiler generated dependencies file for shamfinder_cli.
# This may be replaced when dependencies are built.
