file(REMOVE_RECURSE
  "CMakeFiles/shamfinder_cli.dir/shamfinder_cli.cpp.o"
  "CMakeFiles/shamfinder_cli.dir/shamfinder_cli.cpp.o.d"
  "shamfinder_cli"
  "shamfinder_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shamfinder_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
