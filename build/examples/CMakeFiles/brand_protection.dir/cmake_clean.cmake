file(REMOVE_RECURSE
  "CMakeFiles/brand_protection.dir/brand_protection.cpp.o"
  "CMakeFiles/brand_protection.dir/brand_protection.cpp.o.d"
  "brand_protection"
  "brand_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brand_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
