# Empty compiler generated dependencies file for brand_protection.
# This may be replaced when dependencies are built.
