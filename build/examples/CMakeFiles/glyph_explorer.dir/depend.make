# Empty dependencies file for glyph_explorer.
# This may be replaced when dependencies are built.
