file(REMOVE_RECURSE
  "CMakeFiles/glyph_explorer.dir/glyph_explorer.cpp.o"
  "CMakeFiles/glyph_explorer.dir/glyph_explorer.cpp.o.d"
  "glyph_explorer"
  "glyph_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glyph_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
