# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(detect_perf_smoke "/root/repo/build/bench/detect_throughput" "--smoke")
set_tests_properties(detect_perf_smoke PROPERTIES  LABELS "perf_smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;;/root/repo/CMakeLists.txt;34;include;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("examples")
