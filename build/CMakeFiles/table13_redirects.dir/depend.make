# Empty dependencies file for table13_redirects.
# This may be replaced when dependencies are built.
