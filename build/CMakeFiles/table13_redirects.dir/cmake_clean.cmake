file(REMOVE_RECURSE
  "CMakeFiles/table13_redirects.dir/bench/table13_redirects.cpp.o"
  "CMakeFiles/table13_redirects.dir/bench/table13_redirects.cpp.o.d"
  "bench/table13_redirects"
  "bench/table13_redirects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_redirects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
