# Empty dependencies file for fig09_threshold_study.
# This may be replaced when dependencies are built.
