file(REMOVE_RECURSE
  "CMakeFiles/fig09_threshold_study.dir/bench/fig09_threshold_study.cpp.o"
  "CMakeFiles/fig09_threshold_study.dir/bench/fig09_threshold_study.cpp.o.d"
  "bench/fig09_threshold_study"
  "bench/fig09_threshold_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_threshold_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
