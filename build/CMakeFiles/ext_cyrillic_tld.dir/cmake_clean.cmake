file(REMOVE_RECURSE
  "CMakeFiles/ext_cyrillic_tld.dir/bench/ext_cyrillic_tld.cpp.o"
  "CMakeFiles/ext_cyrillic_tld.dir/bench/ext_cyrillic_tld.cpp.o.d"
  "bench/ext_cyrillic_tld"
  "bench/ext_cyrillic_tld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cyrillic_tld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
