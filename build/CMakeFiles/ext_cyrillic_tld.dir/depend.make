# Empty dependencies file for ext_cyrillic_tld.
# This may be replaced when dependencies are built.
