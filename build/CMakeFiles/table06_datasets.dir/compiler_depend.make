# Empty compiler generated dependencies file for table06_datasets.
# This may be replaced when dependencies are built.
