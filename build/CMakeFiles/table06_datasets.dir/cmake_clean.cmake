file(REMOVE_RECURSE
  "CMakeFiles/table06_datasets.dir/bench/table06_datasets.cpp.o"
  "CMakeFiles/table06_datasets.dir/bench/table06_datasets.cpp.o.d"
  "bench/table06_datasets"
  "bench/table06_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
