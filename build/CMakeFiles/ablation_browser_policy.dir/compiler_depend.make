# Empty compiler generated dependencies file for ablation_browser_policy.
# This may be replaced when dependencies are built.
