file(REMOVE_RECURSE
  "CMakeFiles/ablation_browser_policy.dir/bench/ablation_browser_policy.cpp.o"
  "CMakeFiles/ablation_browser_policy.dir/bench/ablation_browser_policy.cpp.o.d"
  "bench/ablation_browser_policy"
  "bench/ablation_browser_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_browser_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
