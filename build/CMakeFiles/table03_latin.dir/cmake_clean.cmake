file(REMOVE_RECURSE
  "CMakeFiles/table03_latin.dir/bench/table03_latin.cpp.o"
  "CMakeFiles/table03_latin.dir/bench/table03_latin.cpp.o.d"
  "bench/table03_latin"
  "bench/table03_latin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_latin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
