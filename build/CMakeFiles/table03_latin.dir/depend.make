# Empty dependencies file for table03_latin.
# This may be replaced when dependencies are built.
