# Empty dependencies file for table05_build_time.
# This may be replaced when dependencies are built.
