file(REMOVE_RECURSE
  "CMakeFiles/table05_build_time.dir/bench/table05_build_time.cpp.o"
  "CMakeFiles/table05_build_time.dir/bench/table05_build_time.cpp.o.d"
  "bench/table05_build_time"
  "bench/table05_build_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_build_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
