
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_threshold.cpp" "CMakeFiles/ablation_threshold.dir/bench/ablation_threshold.cpp.o" "gcc" "CMakeFiles/ablation_threshold.dir/bench/ablation_threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sham_core.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/sham_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/internet/CMakeFiles/sham_internet.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/sham_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/sham_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/idna/CMakeFiles/sham_idna.dir/DependInfo.cmake"
  "/root/repo/build/src/homoglyph/CMakeFiles/sham_homoglyph.dir/DependInfo.cmake"
  "/root/repo/build/src/simchar/CMakeFiles/sham_simchar.dir/DependInfo.cmake"
  "/root/repo/build/src/font/CMakeFiles/sham_font.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/sham_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/unicode/CMakeFiles/sham_unicode.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sham_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
