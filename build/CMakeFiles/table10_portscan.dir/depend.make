# Empty dependencies file for table10_portscan.
# This may be replaced when dependencies are built.
