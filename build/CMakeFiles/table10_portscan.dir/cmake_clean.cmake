file(REMOVE_RECURSE
  "CMakeFiles/table10_portscan.dir/bench/table10_portscan.cpp.o"
  "CMakeFiles/table10_portscan.dir/bench/table10_portscan.cpp.o.d"
  "bench/table10_portscan"
  "bench/table10_portscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_portscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
