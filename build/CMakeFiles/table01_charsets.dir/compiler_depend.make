# Empty compiler generated dependencies file for table01_charsets.
# This may be replaced when dependencies are built.
