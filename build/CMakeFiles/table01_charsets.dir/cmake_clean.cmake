file(REMOVE_RECURSE
  "CMakeFiles/table01_charsets.dir/bench/table01_charsets.cpp.o"
  "CMakeFiles/table01_charsets.dir/bench/table01_charsets.cpp.o.d"
  "bench/table01_charsets"
  "bench/table01_charsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_charsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
