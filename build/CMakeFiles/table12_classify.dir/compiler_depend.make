# Empty compiler generated dependencies file for table12_classify.
# This may be replaced when dependencies are built.
