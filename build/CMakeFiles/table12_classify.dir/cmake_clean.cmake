file(REMOVE_RECURSE
  "CMakeFiles/table12_classify.dir/bench/table12_classify.cpp.o"
  "CMakeFiles/table12_classify.dir/bench/table12_classify.cpp.o.d"
  "bench/table12_classify"
  "bench/table12_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
