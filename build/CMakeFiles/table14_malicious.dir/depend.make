# Empty dependencies file for table14_malicious.
# This may be replaced when dependencies are built.
