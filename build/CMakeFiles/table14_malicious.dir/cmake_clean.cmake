file(REMOVE_RECURSE
  "CMakeFiles/table14_malicious.dir/bench/table14_malicious.cpp.o"
  "CMakeFiles/table14_malicious.dir/bench/table14_malicious.cpp.o.d"
  "bench/table14_malicious"
  "bench/table14_malicious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table14_malicious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
