# Empty compiler generated dependencies file for table09_targets.
# This may be replaced when dependencies are built.
