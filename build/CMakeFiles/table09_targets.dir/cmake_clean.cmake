file(REMOVE_RECURSE
  "CMakeFiles/table09_targets.dir/bench/table09_targets.cpp.o"
  "CMakeFiles/table09_targets.dir/bench/table09_targets.cpp.o.d"
  "bench/table09_targets"
  "bench/table09_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
