# Empty compiler generated dependencies file for detect_throughput.
# This may be replaced when dependencies are built.
