file(REMOVE_RECURSE
  "CMakeFiles/detect_throughput.dir/bench/detect_throughput.cpp.o"
  "CMakeFiles/detect_throughput.dir/bench/detect_throughput.cpp.o.d"
  "bench/detect_throughput"
  "bench/detect_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
