file(REMOVE_RECURSE
  "CMakeFiles/ablation_fonts.dir/bench/ablation_fonts.cpp.o"
  "CMakeFiles/ablation_fonts.dir/bench/ablation_fonts.cpp.o.d"
  "bench/ablation_fonts"
  "bench/ablation_fonts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fonts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
