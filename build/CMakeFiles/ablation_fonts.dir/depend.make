# Empty dependencies file for ablation_fonts.
# This may be replaced when dependencies are built.
