file(REMOVE_RECURSE
  "CMakeFiles/table07_languages.dir/bench/table07_languages.cpp.o"
  "CMakeFiles/table07_languages.dir/bench/table07_languages.cpp.o.d"
  "bench/table07_languages"
  "bench/table07_languages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_languages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
