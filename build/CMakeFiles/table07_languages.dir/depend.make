# Empty dependencies file for table07_languages.
# This may be replaced when dependencies are built.
