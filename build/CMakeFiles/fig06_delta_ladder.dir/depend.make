# Empty dependencies file for fig06_delta_ladder.
# This may be replaced when dependencies are built.
