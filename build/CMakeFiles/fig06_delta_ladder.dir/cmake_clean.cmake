file(REMOVE_RECURSE
  "CMakeFiles/fig06_delta_ladder.dir/bench/fig06_delta_ladder.cpp.o"
  "CMakeFiles/fig06_delta_ladder.dir/bench/fig06_delta_ladder.cpp.o.d"
  "bench/fig06_delta_ladder"
  "bench/fig06_delta_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_delta_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
