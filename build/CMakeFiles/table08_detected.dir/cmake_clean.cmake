file(REMOVE_RECURSE
  "CMakeFiles/table08_detected.dir/bench/table08_detected.cpp.o"
  "CMakeFiles/table08_detected.dir/bench/table08_detected.cpp.o.d"
  "bench/table08_detected"
  "bench/table08_detected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_detected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
