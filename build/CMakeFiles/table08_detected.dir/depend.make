# Empty dependencies file for table08_detected.
# This may be replaced when dependencies are built.
