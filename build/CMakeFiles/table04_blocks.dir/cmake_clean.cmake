file(REMOVE_RECURSE
  "CMakeFiles/table04_blocks.dir/bench/table04_blocks.cpp.o"
  "CMakeFiles/table04_blocks.dir/bench/table04_blocks.cpp.o.d"
  "bench/table04_blocks"
  "bench/table04_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
