# Empty compiler generated dependencies file for table04_blocks.
# This may be replaced when dependencies are built.
