file(REMOVE_RECURSE
  "CMakeFiles/table11_passivedns.dir/bench/table11_passivedns.cpp.o"
  "CMakeFiles/table11_passivedns.dir/bench/table11_passivedns.cpp.o.d"
  "bench/table11_passivedns"
  "bench/table11_passivedns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_passivedns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
