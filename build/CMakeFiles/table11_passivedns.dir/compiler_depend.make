# Empty compiler generated dependencies file for table11_passivedns.
# This may be replaced when dependencies are built.
