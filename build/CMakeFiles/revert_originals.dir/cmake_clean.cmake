file(REMOVE_RECURSE
  "CMakeFiles/revert_originals.dir/bench/revert_originals.cpp.o"
  "CMakeFiles/revert_originals.dir/bench/revert_originals.cpp.o.d"
  "bench/revert_originals"
  "bench/revert_originals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revert_originals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
