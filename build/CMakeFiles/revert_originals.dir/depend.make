# Empty dependencies file for revert_originals.
# This may be replaced when dependencies are built.
