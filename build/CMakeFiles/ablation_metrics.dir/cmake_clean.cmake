file(REMOVE_RECURSE
  "CMakeFiles/ablation_metrics.dir/bench/ablation_metrics.cpp.o"
  "CMakeFiles/ablation_metrics.dir/bench/ablation_metrics.cpp.o.d"
  "bench/ablation_metrics"
  "bench/ablation_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
