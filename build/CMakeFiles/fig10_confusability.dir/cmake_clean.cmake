file(REMOVE_RECURSE
  "CMakeFiles/fig10_confusability.dir/bench/fig10_confusability.cpp.o"
  "CMakeFiles/fig10_confusability.dir/bench/fig10_confusability.cpp.o.d"
  "bench/fig10_confusability"
  "bench/fig10_confusability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_confusability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
