# Empty dependencies file for fig10_confusability.
# This may be replaced when dependencies are built.
