file(REMOVE_RECURSE
  "CMakeFiles/table02_fontsets.dir/bench/table02_fontsets.cpp.o"
  "CMakeFiles/table02_fontsets.dir/bench/table02_fontsets.cpp.o.d"
  "bench/table02_fontsets"
  "bench/table02_fontsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_fontsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
