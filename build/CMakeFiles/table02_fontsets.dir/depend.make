# Empty dependencies file for table02_fontsets.
# This may be replaced when dependencies are built.
