file(REMOVE_RECURSE
  "CMakeFiles/ext_word_context.dir/bench/ext_word_context.cpp.o"
  "CMakeFiles/ext_word_context.dir/bench/ext_word_context.cpp.o.d"
  "bench/ext_word_context"
  "bench/ext_word_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_word_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
