# Empty dependencies file for ext_word_context.
# This may be replaced when dependencies are built.
